"""Tests for SocialGraph / AssignedSocialNetwork / relationship factors."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.social.graph import (
    UNREACHABLE,
    AssignedSocialNetwork,
    Relationship,
    SocialGraph,
    SocialView,
    relationship_factor,
)


class TestRelationship:
    def test_defaults(self):
        r = Relationship()
        assert r.kind == "friend"
        assert r.weight == 1.0

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ValueError):
            Relationship(weight=0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Relationship().weight = 2.0  # type: ignore[misc]


class TestRelationshipFactor:
    def test_plain_counts_relationships(self):
        rels = [Relationship(), Relationship("colleague", 2.0)]
        assert relationship_factor(rels, hardened=False, lambda_scaling=0.75) == 2.0

    def test_empty_is_zero(self):
        assert relationship_factor([], hardened=True, lambda_scaling=0.75) == 0.0

    def test_hardened_discounts_by_rank(self):
        rels = [Relationship(weight=1.0)] * 3
        value = relationship_factor(rels, hardened=True, lambda_scaling=0.5)
        assert value == pytest.approx(1.0 + 0.5 + 0.25)

    def test_hardened_sorts_weights_descending(self):
        rels = [Relationship(weight=0.1), Relationship(weight=2.0)]
        value = relationship_factor(rels, hardened=True, lambda_scaling=0.5)
        # 2.0 gets full weight, 0.1 scaled.
        assert value == pytest.approx(2.0 + 0.5 * 0.1)

    def test_hardened_caps_cheap_tie_inflation(self):
        """Adding many low-weight ties gains less than linearly (Section 4.4)."""
        one = relationship_factor(
            [Relationship(weight=1.0)], hardened=True, lambda_scaling=0.5
        )
        ten = relationship_factor(
            [Relationship(weight=1.0)] * 10, hardened=True, lambda_scaling=0.5
        )
        assert ten < 2.0 * one  # geometric series bound: < 2 with lambda=0.5

    @given(n=st.integers(min_value=1, max_value=20))
    def test_hardened_below_plain(self, n):
        rels = [Relationship(weight=1.0)] * n
        hardened = relationship_factor(rels, hardened=True, lambda_scaling=0.75)
        plain = relationship_factor(rels, hardened=False, lambda_scaling=0.75)
        assert hardened <= plain + 1e-12


class TestSocialGraph:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SocialGraph(0)

    def test_add_friendship_symmetric(self):
        g = SocialGraph(4)
        g.add_friendship(0, 2)
        assert g.are_adjacent(0, 2)
        assert g.are_adjacent(2, 0)
        assert 2 in g.friends(0)
        assert 0 in g.friends(2)

    def test_default_relationship_attached(self):
        g = SocialGraph(3)
        g.add_friendship(0, 1)
        assert len(g.relationships(0, 1)) == 1

    def test_add_relationships_accumulate(self):
        g = SocialGraph(3)
        g.add_friendship(0, 1, [Relationship("kin", 3.0)])
        g.add_friendship(0, 1, [Relationship("colleague", 1.5)])
        assert len(g.relationships(0, 1)) == 2

    def test_repeat_add_without_relationships_is_noop(self):
        g = SocialGraph(3)
        g.add_friendship(0, 1, [Relationship("kin", 3.0)])
        g.add_friendship(0, 1)
        assert len(g.relationships(0, 1)) == 1

    def test_relationship_order_independent_of_pair_order(self):
        g = SocialGraph(3)
        g.add_friendship(1, 0, [Relationship("kin", 3.0)])
        assert g.relationships(0, 1) == g.relationships(1, 0)

    def test_self_edge_rejected(self):
        g = SocialGraph(3)
        with pytest.raises(ValueError):
            g.add_friendship(1, 1)

    def test_out_of_range_rejected(self):
        g = SocialGraph(3)
        with pytest.raises(IndexError):
            g.add_friendship(0, 3)

    def test_remove_friendship(self):
        g = SocialGraph(3)
        g.add_friendship(0, 1)
        g.remove_friendship(0, 1)
        assert not g.are_adjacent(0, 1)
        assert g.n_edges == 0

    def test_remove_missing_raises(self):
        g = SocialGraph(3)
        with pytest.raises(KeyError):
            g.remove_friendship(0, 1)

    def test_distance_path_chain(self):
        g = SocialGraph(5)
        for i in range(4):
            g.add_friendship(i, i + 1)
        assert g.distance(0, 4) == 4
        assert g.path(0, 4) == [0, 1, 2, 3, 4]

    def test_distance_self_zero(self):
        g = SocialGraph(3)
        assert g.distance(1, 1) == 0

    def test_distance_unreachable(self):
        g = SocialGraph(4)
        g.add_friendship(0, 1)
        assert g.distance(0, 3) == UNREACHABLE
        assert g.path(0, 3) == []

    def test_path_is_shortest(self):
        g = SocialGraph(5)
        # Two routes 0-1-4 and 0-2-3-4.
        g.add_friendship(0, 1)
        g.add_friendship(1, 4)
        g.add_friendship(0, 2)
        g.add_friendship(2, 3)
        g.add_friendship(3, 4)
        assert len(g.path(0, 4)) == 3

    def test_degree(self):
        g = SocialGraph(4)
        g.add_friendship(0, 1)
        g.add_friendship(0, 2)
        assert g.degree(0) == 2
        assert g.degree(3) == 0

    def test_numpy_adjacency_matches_edges(self):
        g = SocialGraph(4)
        g.add_friendship(0, 3)
        adj = g.to_numpy_adjacency()
        assert adj[0, 3] and adj[3, 0]
        assert adj.sum() == 2

    def test_satisfies_social_view_protocol(self):
        assert isinstance(SocialGraph(2), SocialView)


def _distance_matrix(n, pairs):
    d = np.full((n, n), 2, dtype=np.int64)
    np.fill_diagonal(d, 0)
    for i, j in pairs:
        d[i, j] = d[j, i] = 1
    return d


class TestAssignedSocialNetwork:
    def test_adjacency_from_distance_one(self):
        net = AssignedSocialNetwork(_distance_matrix(4, [(0, 1)]))
        assert net.are_adjacent(0, 1)
        assert not net.are_adjacent(0, 2)
        assert net.friends(0) == frozenset({1})

    def test_rejects_asymmetric(self):
        d = _distance_matrix(3, [])
        d[0, 1] = 3
        with pytest.raises(ValueError):
            AssignedSocialNetwork(d)

    def test_rejects_nonzero_diagonal(self):
        d = _distance_matrix(3, [])
        d[1, 1] = 1
        with pytest.raises(ValueError):
            AssignedSocialNetwork(d)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            AssignedSocialNetwork(np.zeros((2, 3)))

    def test_distance_returns_assigned(self):
        net = AssignedSocialNetwork(_distance_matrix(4, [(1, 2)]))
        assert net.distance(0, 3) == 2
        assert net.distance(1, 2) == 1

    def test_relationships_default_single(self):
        net = AssignedSocialNetwork(_distance_matrix(4, [(0, 1)]))
        assert len(net.relationships(0, 1)) == 1

    def test_set_relationships(self):
        net = AssignedSocialNetwork(_distance_matrix(4, [(0, 1)]))
        net.set_relationships(0, 1, [Relationship()] * 3)
        assert len(net.relationships(0, 1)) == 3

    def test_set_relationships_requires_adjacency(self):
        net = AssignedSocialNetwork(_distance_matrix(4, [(0, 1)]))
        with pytest.raises(ValueError, match="distance"):
            net.set_relationships(0, 2, [Relationship()])

    def test_set_relationships_rejects_empty(self):
        net = AssignedSocialNetwork(_distance_matrix(4, [(0, 1)]))
        with pytest.raises(ValueError):
            net.set_relationships(0, 1, [])

    def test_non_adjacent_relationships_empty(self):
        net = AssignedSocialNetwork(_distance_matrix(4, [(0, 1)]))
        assert net.relationships(0, 2) == ()

    def test_path_over_adjacency(self):
        net = AssignedSocialNetwork(_distance_matrix(4, [(0, 1), (1, 2)]))
        assert net.path(0, 2) == [0, 1, 2]

    def test_path_missing_is_empty(self):
        # Distance-2 everywhere means adjacency graph only has the one edge.
        net = AssignedSocialNetwork(_distance_matrix(4, [(0, 1)]))
        assert net.path(0, 3) == []

    def test_distance_matrix_read_only(self):
        net = AssignedSocialNetwork(_distance_matrix(3, []))
        with pytest.raises(ValueError):
            net.distance_matrix[0, 1] = 5

    def test_satisfies_social_view_protocol(self):
        net = AssignedSocialNetwork(_distance_matrix(3, []))
        assert isinstance(net, SocialView)
