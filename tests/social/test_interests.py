"""Tests for interest profiles (declared vs behavioural)."""

import numpy as np
import pytest

from repro.social.interests import InterestProfiles


@pytest.fixture
def profiles():
    p = InterestProfiles(4, 6)
    p.set_declared(0, {0, 1, 2})
    p.set_declared(1, {2, 3})
    p.set_declared(2, {4})
    p.set_declared(3, {0, 5})
    return p


class TestDeclared:
    def test_set_and_get(self, profiles):
        assert profiles.declared(0) == frozenset({0, 1, 2})

    def test_replaces_previous(self, profiles):
        profiles.set_declared(0, {5})
        assert profiles.declared(0) == frozenset({5})

    def test_rejects_empty(self, profiles):
        with pytest.raises(ValueError):
            profiles.set_declared(0, [])

    def test_rejects_out_of_range(self, profiles):
        with pytest.raises(ValueError):
            profiles.set_declared(0, {6})

    def test_declared_matrix(self, profiles):
        m = profiles.declared_matrix()
        assert m.shape == (4, 6)
        assert m[1, 2] and m[1, 3]
        assert m[1].sum() == 2


class TestRequests:
    def test_record_and_weights(self, profiles):
        profiles.record_request(0, 1, 3.0)
        profiles.record_request(0, 2, 1.0)
        w = profiles.request_weights(0)
        assert w[1] == pytest.approx(0.75)
        assert w[2] == pytest.approx(0.25)
        assert w.sum() == pytest.approx(1.0)

    def test_no_requests_zero_weights(self, profiles):
        assert np.all(profiles.request_weights(0) == 0.0)

    def test_rejects_bad_interest(self, profiles):
        with pytest.raises(ValueError):
            profiles.record_request(0, 6)

    def test_rejects_non_positive_count(self, profiles):
        with pytest.raises(ValueError):
            profiles.record_request(0, 1, 0)

    def test_behavioural_interests(self, profiles):
        profiles.record_request(0, 5)
        assert profiles.behavioural_interests(0) == frozenset({5})

    def test_behavioural_can_diverge_from_declared(self, profiles):
        """Falsified profiles cannot hide real request behaviour."""
        profiles.set_declared(0, {0})
        profiles.record_request(0, 3, 10.0)
        assert 3 in profiles.behavioural_interests(0)
        assert 3 not in profiles.declared(0)

    def test_weight_matrix_rows(self, profiles):
        profiles.record_request(1, 2, 2.0)
        m = profiles.request_weight_matrix()
        assert m[1, 2] == pytest.approx(1.0)
        assert m[0].sum() == 0.0

    def test_request_counts_copy(self, profiles):
        profiles.record_request(0, 0)
        counts = profiles.request_counts(0)
        counts[0] = 99
        assert profiles.request_counts(0)[0] == 1.0


class TestConstruction:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            InterestProfiles(0, 5)
        with pytest.raises(ValueError):
            InterestProfiles(5, 0)

    def test_summary(self, profiles):
        s = profiles.summary()
        assert s["mean_declared_size"] == pytest.approx((3 + 2 + 1 + 2) / 4)
        assert s["total_requests"] == 0.0


class TestRecordRequestsBatch:
    def test_equivalent_to_scalar_loop(self):
        import numpy as np

        nodes = np.array([0, 1, 0, 2])
        interests = np.array([1, 2, 1, 0])
        batched = InterestProfiles(3, 4)
        batched.record_requests(nodes, interests)
        scalar = InterestProfiles(3, 4)
        for n, li in zip(nodes, interests):
            scalar.record_request(int(n), int(li))
        for node in range(3):
            assert np.array_equal(
                batched.request_counts(node), scalar.request_counts(node)
            )

    def test_version_tracks_touched_rows(self):
        import numpy as np

        profiles = InterestProfiles(3, 4)
        version = profiles.version
        profiles.record_requests(np.array([2, 2]), np.array([0, 1]))
        assert profiles.rows_changed_since(version).tolist() == [2]

    def test_declared_version_independent_of_requests(self):
        import numpy as np

        profiles = InterestProfiles(3, 4)
        decl = profiles.declared_version
        profiles.record_requests(np.array([0]), np.array([1]))
        assert profiles.declared_version == decl
        profiles.set_declared(0, [2])
        assert profiles.declared_version > decl
