"""Tests for BFS helpers."""

import numpy as np
import pytest

from repro.social.graph import UNREACHABLE, SocialGraph
from repro.social.paths import (
    bfs_distances,
    common_friends,
    distance_histogram,
    pairwise_distance_matrix,
    shortest_path,
)


@pytest.fixture
def chain():
    g = SocialGraph(6)
    for i in range(5):
        g.add_friendship(i, i + 1)
    return g


@pytest.fixture
def star():
    g = SocialGraph(5)
    for leaf in range(1, 5):
        g.add_friendship(0, leaf)
    return g


class TestBfsDistances:
    def test_chain_distances(self, chain):
        dist = bfs_distances(chain, 0)
        assert dist == {i: i for i in range(6)}

    def test_max_hops_cutoff(self, chain):
        dist = bfs_distances(chain, 0, max_hops=2)
        assert set(dist) == {0, 1, 2}

    def test_isolated_source(self):
        g = SocialGraph(3)
        assert bfs_distances(g, 1) == {1: 0}


class TestCommonFriends:
    def test_star_leaves_share_hub(self, star):
        assert common_friends(star, 1, 2) == frozenset({0})

    def test_no_common(self, chain):
        assert common_friends(chain, 0, 3) == frozenset()

    def test_adjacent_nodes_can_share_friends(self):
        g = SocialGraph(3)
        g.add_friendship(0, 1)
        g.add_friendship(0, 2)
        g.add_friendship(1, 2)
        assert common_friends(g, 0, 1) == frozenset({2})


class TestShortestPath:
    def test_delegates_to_view(self, chain):
        assert shortest_path(chain, 0, 3) == [0, 1, 2, 3]


class TestDistanceHistogram:
    def test_counts_buckets(self, chain):
        hist = distance_histogram(chain, [(0, 1), (0, 2), (1, 3), (0, 5)])
        assert hist == {1: 1, 2: 2, 5: 1}

    def test_unreachable_bucket(self):
        g = SocialGraph(4)
        g.add_friendship(0, 1)
        hist = distance_histogram(g, [(0, 3)])
        assert hist == {UNREACHABLE: 1}


class TestPairwiseDistanceMatrix:
    def test_symmetric_and_zero_diagonal(self, star):
        d = pairwise_distance_matrix(star)
        assert np.array_equal(d, d.T)
        assert np.all(np.diag(d) == 0)

    def test_star_structure(self, star):
        d = pairwise_distance_matrix(star)
        assert d[1, 2] == 2
        assert d[0, 4] == 1

    def test_disconnected_marked(self):
        g = SocialGraph(3)
        g.add_friendship(0, 1)
        d = pairwise_distance_matrix(g)
        assert d[0, 2] == UNREACHABLE
