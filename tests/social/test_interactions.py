"""Tests for the interaction-frequency ledger."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.social.interactions import InteractionLedger


class TestInteractionLedger:
    def test_initial_empty(self):
        ledger = InteractionLedger(3)
        assert ledger.frequency(0, 1) == 0.0
        assert ledger.total_out(0) == 0.0
        assert ledger.share(0, 1) == 0.0

    def test_record_accumulates(self):
        ledger = InteractionLedger(3)
        ledger.record(0, 1)
        ledger.record(0, 1, 2.0)
        assert ledger.frequency(0, 1) == 3.0

    def test_directed(self):
        ledger = InteractionLedger(3)
        ledger.record(0, 1, 5.0)
        assert ledger.frequency(1, 0) == 0.0

    def test_share_normalises_by_row(self):
        ledger = InteractionLedger(3)
        ledger.record(0, 1, 3.0)
        ledger.record(0, 2, 1.0)
        assert ledger.share(0, 1) == pytest.approx(0.75)
        assert ledger.share(0, 2) == pytest.approx(0.25)

    def test_share_invariant_pumping_one_dilutes_others(self):
        """The Eq. (2) anti-gaming property: raising f(i,j) lowers every
        other partner's share."""
        ledger = InteractionLedger(4)
        ledger.record(0, 1, 5.0)
        ledger.record(0, 2, 5.0)
        before = ledger.share(0, 2)
        ledger.record(0, 1, 100.0)
        assert ledger.share(0, 2) < before

    def test_share_matrix_rows_sum_to_one_or_zero(self):
        ledger = InteractionLedger(4)
        ledger.record(0, 1, 2.0)
        ledger.record(2, 3, 1.0)
        rows = ledger.share_matrix().sum(axis=1)
        assert rows[0] == pytest.approx(1.0)
        assert rows[1] == 0.0
        assert rows[2] == pytest.approx(1.0)

    def test_rejects_self_interaction(self):
        ledger = InteractionLedger(3)
        with pytest.raises(ValueError):
            ledger.record(1, 1)

    def test_rejects_non_positive_count(self):
        ledger = InteractionLedger(3)
        with pytest.raises(ValueError):
            ledger.record(0, 1, 0.0)

    def test_counts_matrix_read_only(self):
        ledger = InteractionLedger(3)
        with pytest.raises(ValueError):
            ledger.counts_matrix()[0, 1] = 1.0

    def test_reset(self):
        ledger = InteractionLedger(3)
        ledger.record(0, 1)
        ledger.reset()
        assert ledger.total_out(0) == 0.0

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            InteractionLedger(0)

    @given(
        counts=st.lists(
            st.tuples(
                st.integers(0, 4), st.integers(0, 4), st.floats(0.1, 10.0)
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_shares_are_probabilities(self, counts):
        ledger = InteractionLedger(5)
        for i, j, c in counts:
            if i != j:
                ledger.record(i, j, c)
        m = ledger.share_matrix()
        assert np.all(m >= 0)
        assert np.all(m <= 1 + 1e-12)
        row_sums = m.sum(axis=1)
        assert np.all((np.abs(row_sums - 1) < 1e-9) | (row_sums == 0))


class TestDecayNodes:
    def _ledger(self):
        ledger = InteractionLedger(4)
        for i in range(4):
            for j in range(4):
                if i != j:
                    ledger.record(i, j, 8.0)
        return ledger

    def test_decays_rows_and_columns(self):
        ledger = self._ledger()
        ledger.decay_nodes(np.array([1]), 0.5)
        assert ledger.frequency(1, 0) == pytest.approx(4.0)
        assert ledger.frequency(0, 1) == pytest.approx(4.0)
        # Pairs not touching node 1 are untouched.
        assert ledger.frequency(2, 3) == pytest.approx(8.0)

    def test_offline_offline_pairs_decay_squared(self):
        ledger = self._ledger()
        ledger.decay_nodes(np.array([1, 2]), 0.5)
        assert ledger.frequency(1, 2) == pytest.approx(2.0)
        assert ledger.frequency(2, 1) == pytest.approx(2.0)
        assert ledger.frequency(1, 3) == pytest.approx(4.0)

    def test_factor_one_is_noop(self):
        ledger = self._ledger()
        before = ledger.counts_matrix()
        ledger.decay_nodes(np.array([0, 1]), 1.0)
        assert np.array_equal(ledger.counts_matrix(), before)

    def test_empty_nodes_is_noop(self):
        ledger = self._ledger()
        before = ledger.counts_matrix()
        ledger.decay_nodes(np.array([], dtype=np.int64), 0.5)
        assert np.array_equal(ledger.counts_matrix(), before)

    def test_rejects_bad_factor(self):
        ledger = self._ledger()
        with pytest.raises(ValueError):
            ledger.decay_nodes(np.array([0]), 1.5)
        with pytest.raises(ValueError):
            ledger.decay_nodes(np.array([0]), -0.1)


class TestRecordMany:
    def test_equivalent_to_scalar_loop(self):
        raters = np.array([0, 1, 0, 2, 0])
        ratees = np.array([1, 2, 1, 0, 3])
        batched = InteractionLedger(4)
        batched.record_many(raters, ratees)
        scalar = InteractionLedger(4)
        for i, j in zip(raters, ratees):
            scalar.record(int(i), int(j))
        assert np.array_equal(batched.counts_matrix(), scalar.counts_matrix())

    def test_explicit_counts(self):
        ledger = InteractionLedger(3)
        ledger.record_many(np.array([0, 0]), np.array([1, 2]), np.array([2.0, 5.0]))
        assert ledger.frequency(0, 1) == 2.0
        assert ledger.frequency(0, 2) == 5.0

    def test_self_pairs_rejected(self):
        ledger = InteractionLedger(3)
        with pytest.raises(ValueError):
            ledger.record_many(np.array([0, 1]), np.array([1, 1]))

    def test_empty_batch_is_noop(self):
        ledger = InteractionLedger(3)
        version = ledger.version
        ledger.record_many(np.array([], dtype=int), np.array([], dtype=int))
        assert ledger.version == version


class TestVersionTracking:
    def test_record_bumps_version_and_marks_row(self):
        ledger = InteractionLedger(4)
        version = ledger.version
        ledger.record(2, 0)
        assert ledger.version > version
        assert ledger.rows_changed_since(version).tolist() == [2]

    def test_decay_marks_raters_of_decayed_columns(self):
        ledger = InteractionLedger(4)
        ledger.record(0, 1)
        ledger.record(3, 1)
        version = ledger.version
        ledger.decay_nodes(np.array([1]), 0.5)
        changed = set(ledger.rows_changed_since(version).tolist())
        # Node 1's own row plus every rater whose column-1 entry rescaled.
        assert changed == {0, 1, 3}


class TestSparseInteractionLedger:
    """The CSR ledger must mirror the dense ledger's observable semantics."""

    def _twin(self, n=6):
        from repro.social.interactions import SparseInteractionLedger

        return InteractionLedger(n), SparseInteractionLedger(n)

    def _hammer(self, dense, sp, seed=0):
        rng = np.random.default_rng(seed)
        for step in range(60):
            i, j = (int(v) for v in rng.integers(0, 6, 2))
            if i != j:
                count = float(rng.integers(1, 4))
                dense.record(i, j, count)
                sp.record(i, j, count)
            if step % 7 == 0:
                nodes = np.unique(rng.integers(0, 6, 2))
                dense.decay_nodes(nodes, 0.5)
                sp.decay_nodes(nodes, 0.5)

    def test_matches_dense_after_mixed_traffic(self):
        dense, sp = self._twin()
        self._hammer(dense, sp)
        np.testing.assert_allclose(
            sp.counts_matrix(), dense.counts_matrix(), atol=1e-12
        )
        np.testing.assert_allclose(
            sp.share_matrix(), dense.share_matrix(), atol=1e-12
        )
        for i in range(6):
            assert sp.total_out(i) == pytest.approx(dense.total_out(i))
            for j in range(6):
                assert sp.frequency(i, j) == pytest.approx(dense.frequency(i, j))
                assert sp.share(i, j) == pytest.approx(dense.share(i, j))

    def test_version_protocol_matches_dense(self):
        dense, sp = self._twin()
        v_dense, v_sp = dense.version, sp.version
        dense.record(2, 0)
        sp.record(2, 0)
        assert sp.rows_changed_since(v_sp).tolist() == \
            dense.rows_changed_since(v_dense).tolist() == [2]

    def test_decay_touches_raters_of_decayed_columns(self):
        dense, sp = self._twin()
        for ledger in (dense, sp):
            ledger.record(0, 1)
            ledger.record(3, 1)
        v_dense, v_sp = dense.version, sp.version
        dense.decay_nodes(np.array([1]), 0.5)
        sp.decay_nodes(np.array([1]), 0.5)
        assert set(sp.rows_changed_since(v_sp).tolist()) == \
            set(dense.rows_changed_since(v_dense).tolist()) == {0, 1, 3}

    def test_share_pairs_samples_share_matrix(self):
        dense, sp = self._twin()
        self._hammer(dense, sp, seed=3)
        raters = np.array([0, 1, 2, 4])
        ratees = np.array([1, 0, 5, 2])
        want = dense.share_matrix()[raters, ratees]
        np.testing.assert_allclose(sp.share_pairs(raters, ratees), want, atol=1e-12)
        np.testing.assert_allclose(
            dense.share_pairs(raters, ratees), want, atol=1e-12
        )

    def test_validation_matches_dense(self):
        _, sp = self._twin()
        with pytest.raises(ValueError):
            sp.record(1, 1)
        with pytest.raises(ValueError):
            sp.record(0, 1, -2.0)
        with pytest.raises(ValueError):
            sp.record_many(np.array([0, 1]), np.array([1, 1]))

    def test_state_roundtrip(self):
        from repro.social.interactions import SparseInteractionLedger

        dense, sp = self._twin()
        self._hammer(dense, sp, seed=5)
        other = SparseInteractionLedger(6)
        other.restore_state(sp.state_dict())
        np.testing.assert_array_equal(other.counts_matrix(), sp.counts_matrix())
        assert other.version == sp.version

    def test_restore_rejects_wrong_shape(self):
        from scipy import sparse

        from repro.social.interactions import SparseInteractionLedger

        _, sp = self._twin()
        state = sp.state_dict()
        state["counts_csr"] = sparse.csr_matrix((7, 7))
        with pytest.raises(ValueError):
            SparseInteractionLedger(6).restore_state(state)

    def test_reset_clears_everything(self):
        _, sp = self._twin()
        sp.record(0, 1, 2.0)
        sp.reset()
        assert sp.total_out(0) == 0.0
        assert sp.counts_matrix().sum() == 0.0
