"""Tests for synthetic social topology builders."""

import numpy as np
import pytest

from repro.social.generators import (
    assigned_distance_matrix,
    erdos_renyi_graph,
    paper_social_network,
    preferential_attachment_graph,
)
from repro.utils.rng import spawn_rng


@pytest.fixture
def rng():
    return spawn_rng(99, 0)


class TestAssignedDistanceMatrix:
    def test_symmetric_zero_diagonal(self, rng):
        d = assigned_distance_matrix(10, rng)
        assert np.array_equal(d, d.T)
        assert np.all(np.diag(d) == 0)

    def test_values_from_choices(self, rng):
        d = assigned_distance_matrix(20, rng, distance_choices=(2, 5))
        off = d[~np.eye(20, dtype=bool)]
        assert set(np.unique(off)) <= {2, 5}

    def test_unit_pairs_pinned(self, rng):
        d = assigned_distance_matrix(
            10, rng, distance_choices=(3,), unit_distance_pairs=[(0, 9)]
        )
        assert d[0, 9] == 1 and d[9, 0] == 1
        assert d[0, 5] == 3

    def test_rejects_bad_choices(self, rng):
        with pytest.raises(ValueError):
            assigned_distance_matrix(5, rng, distance_choices=(0,))

    def test_deterministic_per_seed(self):
        a = assigned_distance_matrix(8, spawn_rng(5, 0))
        b = assigned_distance_matrix(8, spawn_rng(5, 0))
        assert np.array_equal(a, b)


class TestPaperSocialNetwork:
    def test_colluders_adjacent_clique(self, rng):
        colluders = [2, 3, 4]
        net = paper_social_network(12, colluders, rng)
        for i in colluders:
            for j in colluders:
                if i != j:
                    assert net.distance(i, j) == 1

    def test_colluder_relationship_count_range(self, rng):
        colluders = [0, 1, 2, 3]
        net = paper_social_network(12, colluders, rng)
        for i in colluders:
            for j in colluders:
                if i < j:
                    assert 3 <= len(net.relationships(i, j)) <= 5

    def test_normal_relationship_count_range(self, rng):
        net = paper_social_network(20, [0, 1], rng)
        found = False
        for i in range(2, 20):
            for j in range(i + 1, 20):
                if net.distance(i, j) == 1:
                    found = True
                    assert 1 <= len(net.relationships(i, j)) <= 2
        assert found

    def test_distances_in_1_to_3(self, rng):
        net = paper_social_network(15, [0, 1], rng)
        d = net.distance_matrix
        off = d[~np.eye(15, dtype=bool)]
        assert set(np.unique(off)) <= {1, 2, 3}

    def test_colluder_distance_override(self, rng):
        net = paper_social_network(10, [0, 1, 2], rng, colluder_distance=3)
        assert net.distance(0, 1) == 3

    def test_rejects_out_of_range_colluder(self, rng):
        with pytest.raises(ValueError):
            paper_social_network(5, [7], rng)

    def test_rejects_bad_distance(self, rng):
        with pytest.raises(ValueError):
            paper_social_network(5, [0, 1], rng, colluder_distance=0)


class TestPreferentialAttachment:
    def test_connected(self, rng):
        g = preferential_attachment_graph(50, rng, edges_per_node=2)
        from repro.social.paths import bfs_distances

        assert len(bfs_distances(g, 0)) == 50

    def test_heavy_tail(self, rng):
        g = preferential_attachment_graph(300, rng, edges_per_node=2)
        degrees = np.array([g.degree(i) for i in range(300)])
        # Hubs exist: max degree far above the median.
        assert degrees.max() >= 4 * np.median(degrees)

    def test_min_degree(self, rng):
        g = preferential_attachment_graph(40, rng, edges_per_node=3)
        assert min(g.degree(i) for i in range(40)) >= 3

    def test_rejects_small_n(self, rng):
        with pytest.raises(ValueError):
            preferential_attachment_graph(3, rng, edges_per_node=3)


class TestErdosRenyi:
    def test_density_close_to_p(self, rng):
        g = erdos_renyi_graph(60, 0.2, rng)
        possible = 60 * 59 / 2
        assert abs(g.n_edges / possible - 0.2) < 0.05

    def test_zero_p_empty(self, rng):
        assert erdos_renyi_graph(10, 0.0, rng).n_edges == 0

    def test_one_p_complete(self, rng):
        g = erdos_renyi_graph(8, 1.0, rng)
        assert g.n_edges == 8 * 7 / 2

    def test_rejects_bad_p(self, rng):
        with pytest.raises(ValueError):
            erdos_renyi_graph(5, 1.2, rng)
