"""Tests for the incremental social-network construction plugin."""

import pytest

from repro.reputation import EigenTrust
from repro.social.construction import SocialNetworkBuilder
from repro.social.graph import Relationship


@pytest.fixture
def builder():
    b = SocialNetworkBuilder(6, initial_capacity=4)
    for interests in ({0, 1}, {1, 2}, {3}, {0, 3}):
        b.register_user(interests)
    return b


class TestRegistration:
    def test_sequential_ids(self):
        b = SocialNetworkBuilder(4)
        assert b.register_user({0}) == 0
        assert b.register_user({1}) == 1
        assert b.n_users == 2

    def test_declared_interests_stored(self, builder):
        assert builder.profiles.declared(1) == frozenset({1, 2})

    def test_rejects_bad_universe(self):
        with pytest.raises(ValueError):
            SocialNetworkBuilder(0)

    def test_unknown_user_rejected(self, builder):
        with pytest.raises(IndexError):
            builder.add_friendship(0, 9)
        with pytest.raises(IndexError):
            builder.record_request(9, 0, 0)
        with pytest.raises(IndexError):
            builder.record_rating(9, 0, 1.0)


class TestGrowth:
    def test_grows_past_initial_capacity(self):
        b = SocialNetworkBuilder(4, initial_capacity=2)
        for _ in range(10):
            b.register_user({0})
        assert b.n_users == 10

    def test_growth_preserves_state(self):
        b = SocialNetworkBuilder(4, initial_capacity=2)
        a = b.register_user({0, 1})
        c = b.register_user({2})
        b.add_friendship(a, c, [Relationship("kin", 2.0)])
        b.record_request(a, c, 0)
        b.record_rating(a, c, 1.0)
        # Trigger growth.
        for _ in range(5):
            b.register_user({3})
        assert b.graph.are_adjacent(a, c)
        assert b.graph.relationships(a, c)[0].kind == "kin"
        assert b.interactions.frequency(a, c) == 2.0  # request + rating
        assert b.profiles.request_weights(a)[0] == 1.0
        interval = b.drain_interval()
        assert interval.value_sum[a, c] == 1.0


class TestEvents:
    def test_request_feeds_both_ledgers(self, builder):
        builder.record_request(0, 1, 1)
        assert builder.interactions.frequency(0, 1) == 1.0
        assert builder.profiles.behavioural_interests(0) == frozenset({1})

    def test_rating_counts_as_interaction(self, builder):
        builder.record_rating(0, 1, -1.0)
        assert builder.interactions.frequency(0, 1) == 1.0

    def test_drain_interval_resets(self, builder):
        builder.record_rating(0, 1, 1.0)
        first = builder.drain_interval()
        second = builder.drain_interval()
        assert first.value_sum[0, 1] == 1.0
        assert second.value_sum.sum() == 0.0


class TestBuildSocialTrust:
    def test_wraps_base_system(self, builder):
        system = builder.build_socialtrust(EigenTrust(4, [0]))
        builder.add_friendship(0, 1)
        builder.record_request(0, 1, 1)
        builder.record_rating(0, 1, 1.0)
        reps = system.update(builder.drain_interval())
        assert reps.sum() == pytest.approx(1.0)
        assert system.name == "EigenTrust+SocialTrust"

    def test_size_mismatch_rejected(self, builder):
        with pytest.raises(ValueError, match="n_nodes"):
            builder.build_socialtrust(EigenTrust(3, [0]))

    def test_end_to_end_collusion_detection(self):
        """A colluding pair flooding ratings through the plugin is flagged."""
        b = SocialNetworkBuilder(6, initial_capacity=12)
        for i in range(12):
            b.register_user({i % 6})
        b.add_friendship(0, 1, [Relationship()] * 4)
        system = b.build_socialtrust(EigenTrust(12, [2]))
        for interval_index in range(3):
            for i in range(12):
                for step in (1, 2, 3):
                    j = (i + step) % 12
                    b.record_request(i, j, j % 6)
                    b.record_rating(i, j, 1.0)
            for _ in range(50):
                b.record_rating(0, 1, 1.0)
                b.record_rating(1, 0, 1.0)
            system.update(b.drain_interval())
        assert system.last_detection is not None
        flagged = {(f.rater, f.ratee) for f in system.last_detection.findings}
        assert (0, 1) in flagged
