"""Tests for social-graph statistics."""

import math

import pytest

from repro.social.generators import preferential_attachment_graph
from repro.social.graph import SocialGraph
from repro.social.metrics import (
    clustering_coefficient,
    degree_distribution,
    mean_path_length,
    summarize_graph,
)
from repro.utils.rng import spawn_rng


@pytest.fixture
def triangle_plus_tail():
    """0-1-2 triangle with a tail 2-3."""
    g = SocialGraph(4)
    g.add_friendship(0, 1)
    g.add_friendship(1, 2)
    g.add_friendship(0, 2)
    g.add_friendship(2, 3)
    return g


class TestDegreeDistribution:
    def test_counts(self, triangle_plus_tail):
        assert degree_distribution(triangle_plus_tail).tolist() == [2, 2, 3, 1]

    def test_empty_graph(self):
        assert degree_distribution(SocialGraph(3)).tolist() == [0, 0, 0]


class TestClustering:
    def test_triangle_member(self, triangle_plus_tail):
        assert clustering_coefficient(triangle_plus_tail, 0) == 1.0

    def test_hub_with_partial_triangles(self, triangle_plus_tail):
        # Node 2's friends {0, 1, 3}: only (0, 1) linked -> 1/3.
        assert clustering_coefficient(triangle_plus_tail, 2) == pytest.approx(1 / 3)

    def test_leaf_zero(self, triangle_plus_tail):
        assert clustering_coefficient(triangle_plus_tail, 3) == 0.0


class TestMeanPathLength:
    def test_chain(self):
        g = SocialGraph(3)
        g.add_friendship(0, 1)
        g.add_friendship(1, 2)
        # Distances: (0,1)=1 (0,2)=2 (1,2)=1, both directions -> mean 4/3.
        assert mean_path_length(g) == pytest.approx(4 / 3)

    def test_disconnected_is_nan(self):
        assert math.isnan(mean_path_length(SocialGraph(3)))

    def test_sampled_close_to_full(self):
        g = preferential_attachment_graph(120, spawn_rng(4, 0), edges_per_node=2)
        full = mean_path_length(g)
        sampled = mean_path_length(g, sample_sources=40)
        assert abs(full - sampled) < 0.4

    def test_rejects_bad_sample(self):
        g = SocialGraph(3)
        with pytest.raises(ValueError):
            mean_path_length(g, sample_sources=0)


class TestSummary:
    def test_fields(self, triangle_plus_tail):
        summary = summarize_graph(triangle_plus_tail, path_sample_sources=None)
        assert summary.n_nodes == 4
        assert summary.n_edges == 4
        assert summary.max_degree == 3
        assert summary.mean_degree == pytest.approx(2.0)
        assert 0.0 < summary.mean_clustering < 1.0

    def test_scale_free_graph_properties(self):
        g = preferential_attachment_graph(200, spawn_rng(9, 0), edges_per_node=2)
        summary = summarize_graph(g)
        # Small world: short paths, hubs far above the mean degree.
        assert summary.mean_path_length < 5.0
        assert summary.max_degree > 3 * summary.mean_degree
