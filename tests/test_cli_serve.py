"""The `serve` CLI subcommand: record / stream / resume modes and the
serve-specific exit codes."""

import io
import json

import pytest

from repro.cli import EXIT_CONFIG, EXIT_OK, EXIT_RUNTIME, main

SMALL = [
    "--nodes", "20", "--pretrusted", "2", "--colluders", "4",
    "--seed", "11", "--cycles", "2",
]


@pytest.fixture(scope="module")
def recorded_stream(tmp_path_factory):
    """One recorded event-stream file shared by the streaming tests."""
    path = tmp_path_factory.mktemp("serve") / "events.jsonl"
    assert main(["serve", *SMALL, "--record", str(path)]) == EXIT_OK
    return path


class TestModeValidation:
    def test_no_mode_is_config_error(self, capsys):
        assert main(["serve", *SMALL]) == EXIT_CONFIG
        assert "needs a mode" in capsys.readouterr().err

    def test_record_conflicts_with_events(self, tmp_path, capsys):
        code = main(
            ["serve", *SMALL, "--record", str(tmp_path / "a.jsonl"),
             "--events", str(tmp_path / "b.jsonl")]
        )
        assert code == EXIT_CONFIG
        assert "cannot be combined" in capsys.readouterr().err

    def test_snapshot_every_requires_snapshot(self, capsys):
        code = main(["serve", *SMALL, "--events", "-", "--snapshot-every", "2"])
        assert code == EXIT_CONFIG
        assert "--snapshot-every requires --snapshot" in capsys.readouterr().err

    def test_verify_requires_snapshot(self, capsys):
        code = main(["serve", *SMALL, "--events", "-", "--verify-snapshot"])
        assert code == EXIT_CONFIG
        assert "--verify-snapshot requires --snapshot" in capsys.readouterr().err

    def test_missing_events_file(self, tmp_path, capsys):
        code = main(["serve", "--events", str(tmp_path / "absent.jsonl")])
        assert code == EXIT_CONFIG
        assert "not found" in capsys.readouterr().err

    def test_malformed_events_file(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["serve", "--events", str(path)]) == EXIT_CONFIG
        assert "malformed event stream" in capsys.readouterr().err

    def test_bad_listen_spec(self, capsys):
        assert main(["serve", *SMALL, "--listen", "9999"]) == EXIT_CONFIG
        assert "HOST:PORT" in capsys.readouterr().err

    def test_resume_missing_checkpoint(self, tmp_path, capsys):
        code = main(["serve", "--resume", str(tmp_path / "absent.ckpt")])
        assert code == EXIT_CONFIG
        assert "cannot resume" in capsys.readouterr().err


class TestRecordAndStream:
    def test_record_writes_self_describing_stream(self, recorded_stream, capsys):
        lines = recorded_stream.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["t"] == "header"
        assert header["spec"]["seed"] == 11
        assert header["spec"]["world"]["n_nodes"] == 20
        assert len(lines) > 100  # two cycles of events plus watermarks

    def test_stream_file_with_report_and_snapshot(
        self, recorded_stream, tmp_path, capsys
    ):
        report = tmp_path / "report.json"
        snapshot = tmp_path / "svc.ckpt"
        code = main(
            ["serve", "--events", str(recorded_stream),
             "--snapshot", str(snapshot), "--verify-snapshot",
             "--report", str(report)]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "snapshot round-trip: OK" in out
        summary = json.loads(report.read_text())
        assert summary["intervals_run"] == 2
        assert summary["events_per_second"] > 0
        assert summary["metrics"]["serve.events.watermark"]["value"] == 2
        # The header's spec drove the world: 20 nodes, not the default 100.
        assert summary["n_nodes"] == 20
        assert snapshot.exists()

    def test_resume_from_snapshot(self, recorded_stream, tmp_path, capsys):
        snapshot = tmp_path / "svc.ckpt"
        assert main(
            ["serve", "--events", str(recorded_stream), "--snapshot", str(snapshot)]
        ) == EXIT_OK
        capsys.readouterr()
        assert main(["serve", "--resume", str(snapshot)]) == EXIT_OK
        assert "resumed" in capsys.readouterr().out


class TestStdinStreaming:
    def test_queries_answered_on_stdout(self, monkeypatch, capsys):
        lines = (
            '{"t":"rating","rater":0,"ratee":1,"value":1.0}\n'
            '{"t":"watermark"}\n'
            '{"t":"query","node":1}\n'
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        assert main(["serve", *SMALL, "--events", "-"]) == EXIT_OK
        out = capsys.readouterr().out
        result = json.loads(out.splitlines()[0])
        assert result["t"] == "result"
        assert result["intervals_run"] == 1

    def test_malformed_stdin_is_runtime_error(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO('{"t":"rating","rater":0,"ratee":1,"value":1.0}\nnope\n'),
        )
        assert main(["serve", *SMALL, "--events", "-"]) == EXIT_RUNTIME
        assert "malformed event on stdin" in capsys.readouterr().err

    def test_stale_watermark_is_runtime_error(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO('{"t":"watermark","cycle":1}\n{"t":"watermark","cycle":0}\n'),
        )
        assert main(["serve", *SMALL, "--events", "-"]) == EXIT_RUNTIME
        assert "behind" in capsys.readouterr().err
