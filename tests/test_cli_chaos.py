"""CLI coverage for the chaos flags, checkpointing, and qa reconverge."""

import json

import pytest

from repro.cli import EXIT_CONFIG, build_parser, main

SMALL_WORLD = [
    "--nodes", "16",
    "--pretrusted", "2",
    "--colluders", "4",
    "--cycles", "4",
    "--seed", "3",
]


def summary_lines(text):
    """The scenario summary, minus progress and timing chatter."""
    return [
        line
        for line in text.splitlines()
        if line
        and not line.startswith(("checkpoint @", "resumed "))
        and not line.lstrip().startswith("[")
    ]


class TestParser:
    def test_chaos_flags(self):
        args = build_parser().parse_args(
            [
                "simulate",
                "--managers", "3",
                "--partition", "1:3",
                "--partition", "5:7",
                "--byzantine", "1:2:4",
                "--checkpoint", "ck.jsonl",
                "--checkpoint-every", "2",
            ]
        )
        assert args.managers == 3
        assert args.partition == ["1:3", "5:7"]
        assert args.byzantine == ["1:2:4"]
        assert args.checkpoint_every == 2

    def test_reconverge_defaults(self):
        args = build_parser().parse_args(["qa", "reconverge"])
        assert args.cycles == 12
        assert args.tolerance == 0.02
        assert args.budget == 5
        assert args.report is None


class TestSimulateChaosErrors:
    def test_malformed_partition(self, capsys):
        assert main(["simulate", *SMALL_WORLD, "--partition", "3"]) == EXIT_CONFIG
        assert "--partition expects" in capsys.readouterr().err

    def test_malformed_byzantine(self, capsys):
        assert main(["simulate", *SMALL_WORLD, "--byzantine", "a:b"]) == EXIT_CONFIG
        assert "--byzantine expects" in capsys.readouterr().err

    def test_byzantine_requires_managers(self, capsys):
        assert main(["simulate", *SMALL_WORLD, "--byzantine", "0:1:3"]) == EXIT_CONFIG
        assert "error" in capsys.readouterr().err

    def test_checkpoint_every_requires_target(self, capsys):
        assert main(["simulate", *SMALL_WORLD, "--checkpoint-every", "2"]) == EXIT_CONFIG
        assert "--checkpoint-every requires" in capsys.readouterr().err

    def test_resume_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["simulate", "--resume", str(missing)]) == EXIT_CONFIG
        assert "cannot resume" in capsys.readouterr().err


class TestSimulateChaosRun:
    def test_partition_and_byzantine_window(self, capsys):
        code = main(
            [
                "simulate",
                *SMALL_WORLD,
                "--managers", "3",
                "--partition", "1:3",
                "--byzantine", "1:2:4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "colluder" in out  # the usual scenario summary printed


class TestCheckpointResume:
    def test_resumed_run_matches_checkpointed_run(self, tmp_path, capsys):
        """Kill-and-resume through the CLI: the resumed process must
        print the exact same scenario summary as the original."""
        ck = tmp_path / "ck.jsonl"
        code = main(
            [
                "simulate",
                *SMALL_WORLD,
                "--cycles", "6",
                "--managers", "3",
                "--partition", "1:3",
                "--checkpoint", str(ck),
                "--checkpoint-every", "4",
            ]
        )
        assert code == 0
        full_out = capsys.readouterr().out
        assert f"checkpoint @ cycle 4: {ck}" in full_out
        assert ck.exists()

        code = main(["simulate", "--resume", str(ck)])
        assert code == 0
        resumed_out = capsys.readouterr().out
        assert f"resumed {ck} at cycle 4/6" in resumed_out
        assert summary_lines(resumed_out) == summary_lines(full_out)


class TestQaReconverge:
    def test_writes_report_artifact(self, tmp_path, capsys):
        report_path = tmp_path / "reconvergence.json"
        code = main(["qa", "reconverge", "--report", str(report_path)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "ALL BACKENDS RECONVERGED" in out
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert len(payload["results"]) == 5

    def test_bad_spec_is_an_error(self, capsys):
        # Heal cycle beyond the run: the harness rejects it, the CLI
        # reports instead of crashing.
        assert main(["qa", "reconverge", "--cycles", "2"]) == EXIT_CONFIG
        assert "error" in capsys.readouterr().err
