"""Tests for the ``repro.api`` facade.

The facade promises two things: (1) one keyword-driven call assembles the
exact world that manual ``build_world`` wiring produces — same RNG stream,
so runs are bit-identical — and (2) the convenience accessors on
:class:`ScenarioResult` agree with the raw metrics they summarise.
"""

import numpy as np
import pytest

import repro
from repro.api import (
    Scenario,
    ScenarioResult,
    build_scenario,
    list_experiments,
    run_experiment,
    run_scenario,
)
from repro.experiments import CollusionKind, SystemKind, WorldConfig, build_world
from repro.p2p import EngineMode

SMALL = dict(
    n_nodes=24,
    n_pretrusted=2,
    n_colluders=6,
    n_interests=5,
    interests_per_node=(1, 3),
    simulation_cycles=2,
    query_cycles=4,
)


class TestBuildScenario:
    def test_matches_manual_build_world_bit_for_bit(self):
        manual = build_world(
            WorldConfig(
                collusion=CollusionKind.PCM,
                system=SystemKind.EIGENTRUST_SOCIALTRUST,
                **SMALL,
            ),
            seed=3,
        )
        manual_history = manual.simulation.run().reputation_history()
        result = run_scenario(
            collusion="pcm", system="EigenTrust+SocialTrust", seed=3, **SMALL
        )
        assert np.array_equal(result.history, manual_history)

    def test_string_enums_resolve(self):
        scenario = build_scenario(
            system="eigentrust", collusion="PCM", **SMALL
        )
        assert scenario.config.system is SystemKind.EIGENTRUST
        assert scenario.config.collusion is CollusionKind.PCM

    def test_use_socialtrust_upgrades_and_downgrades(self):
        up = build_scenario(system="eBay", use_socialtrust=True, **SMALL)
        assert up.config.system is SystemKind.EBAY_SOCIALTRUST
        down = build_scenario(
            system="PowerTrust+SocialTrust", use_socialtrust=False, **SMALL
        )
        assert down.config.system is SystemKind.POWERTRUST

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="unknown reputation system"):
            build_scenario(system="PageRank", **SMALL)

    def test_unknown_keyword_rejected(self):
        with pytest.raises(TypeError, match="unknown keyword"):
            build_scenario(n_peers=10)

    def test_engine_forwarded(self):
        scenario = build_scenario(engine="scalar", **SMALL)
        assert scenario.config.engine is EngineMode.SCALAR

    def test_scenario_exposes_world_parts(self):
        scenario = build_scenario(**SMALL)
        assert isinstance(scenario, Scenario)
        assert scenario.simulation is scenario.world.simulation
        assert scenario.world.config is scenario.config


class TestScenarioResult:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(collusion="pcm", seed=1, **SMALL)

    def test_reputations_match_metrics(self, result):
        assert isinstance(result, ScenarioResult)
        assert np.array_equal(
            result.reputations, result.metrics.final_reputations()
        )
        assert result.history.shape == (SMALL["simulation_cycles"], SMALL["n_nodes"])

    def test_group_means_agree_with_raw_vector(self, result):
        reps = result.reputations
        assert result.colluder_mean == pytest.approx(
            reps[list(result.colluder_ids)].mean()
        )
        assert result.normal_mean == pytest.approx(
            reps[list(result.normal_ids)].mean()
        )

    def test_request_share_agrees_with_metrics(self, result):
        assert result.colluder_request_share == pytest.approx(
            result.metrics.fraction_served_by(list(result.colluder_ids))
        )

    def test_summary_mentions_the_cell(self, result):
        text = result.summary()
        assert "collusion=pcm" in text
        assert "seed=1" in text
        assert "colluder mean reputation" in text


class TestRegistryPassthrough:
    def test_list_experiments_nonempty(self):
        names = list_experiments()
        assert "fig8" in names

    def test_run_experiment_forwards_kwargs(self):
        result = run_experiment("fig1", seed=0)
        assert result.describe()

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestTopLevelReexports:
    def test_repro_package_exposes_facade(self):
        assert repro.build_scenario is build_scenario
        assert repro.run_scenario is run_scenario
        assert repro.list_experiments is list_experiments
        for name in repro.__all__:
            assert hasattr(repro, name)
