"""Tests for the deprecation shims backing the ``repro.api`` facade."""

import pytest

from repro.utils.deprecation import deprecated_alias, deprecated_param


@deprecated_alias(old_name="new_name", cycles="simulation_cycles")
def configure(*, new_name=0, simulation_cycles=10):
    return new_name, simulation_cycles


@deprecated_param("verbose", reason="output moved to logging")
def run(*, value=1):
    return value


class TestDeprecatedAlias:
    def test_new_name_passes_silently(self, recwarn):
        assert configure(new_name=5) == (5, 10)
        assert not recwarn.list

    def test_old_name_warns_and_forwards(self):
        with pytest.warns(DeprecationWarning, match="'old_name' is deprecated"):
            assert configure(old_name=5) == (5, 10)

    def test_multiple_aliases_each_warn(self):
        with pytest.warns(DeprecationWarning, match="'cycles' is deprecated"):
            assert configure(cycles=3) == (0, 3)

    def test_both_spellings_rejected(self):
        with pytest.raises(TypeError, match="both 'new_name' and its deprecated"):
            configure(new_name=1, old_name=2)

    def test_mapping_is_introspectable(self):
        assert configure.__deprecated_aliases__ == {
            "old_name": "new_name",
            "cycles": "simulation_cycles",
        }


class TestDeprecatedParam:
    def test_absent_param_passes_silently(self, recwarn):
        assert run(value=2) == 2
        assert not recwarn.list

    def test_param_warns_and_is_dropped(self):
        with pytest.warns(DeprecationWarning, match="'verbose' is deprecated"):
            assert run(value=2, verbose=True) == 2

    def test_reason_appears_in_message(self):
        with pytest.warns(DeprecationWarning, match="output moved to logging"):
            run(verbose=False)

    def test_names_are_introspectable(self):
        assert run.__deprecated_params__ == {"verbose": "output moved to logging"}


class TestFacadeAliases:
    def test_build_scenario_old_keywords_warn(self):
        from repro.api import build_scenario

        with pytest.warns(DeprecationWarning, match="'cycles' is deprecated"):
            scenario = build_scenario(
                n_nodes=20,
                n_pretrusted=2,
                n_colluders=3,
                cycles=2,
                seed=0,
            )
        assert scenario.config.simulation_cycles == 2

    def test_run_scenario_drops_progress(self):
        from repro.api import run_scenario

        with pytest.warns(DeprecationWarning, match="'progress' is deprecated"):
            result = run_scenario(
                n_nodes=20,
                n_pretrusted=2,
                n_colluders=3,
                simulation_cycles=1,
                progress=True,
                seed=0,
            )
        assert result.metrics.n_snapshots == 1
