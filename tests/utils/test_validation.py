"""Tests for argument validation helpers."""

import math

import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError, match="p"):
            check_probability("p", value)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_probability("p", math.nan)

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_probability("p", math.inf)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_probability("p", True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_probability("p", "0.5")

    def test_returns_float(self):
        assert isinstance(check_probability("p", 1), float)


class TestCheckFraction:
    def test_accepts_one(self):
        assert check_fraction("f", 1.0) == 1.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_fraction("f", 0.0)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction("f", 1.5)


class TestCheckPositive:
    def test_accepts_small_positive(self):
        assert check_positive("x", 1e-12) == 1e-12

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)

    def test_error_message_contains_value(self):
        with pytest.raises(ValueError, match="-3"):
            check_non_negative("x", -3)
