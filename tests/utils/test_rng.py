"""Tests for the seeded RNG streams."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import spawn_rng


class TestSpawnRng:
    def test_same_key_same_stream(self):
        a = spawn_rng(42, 1, 2)
        b = spawn_rng(42, 1, 2)
        assert np.array_equal(a.random(16), b.random(16))

    def test_different_key_different_stream(self):
        a = spawn_rng(42, 1, 2)
        b = spawn_rng(42, 1, 3)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_different_seed_different_stream(self):
        a = spawn_rng(42, 1)
        b = spawn_rng(43, 1)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_none_seed_gives_entropy(self):
        a = spawn_rng(None)
        b = spawn_rng(None)
        # Astronomically unlikely to collide.
        assert not np.array_equal(a.random(16), b.random(16))

    def test_tuple_key_parts_flattened(self):
        a = spawn_rng(7, (1, 2), 3)
        b = spawn_rng(7, 1, 2, 3)
        assert np.array_equal(a.random(8), b.random(8))

    def test_returns_generator(self):
        assert isinstance(spawn_rng(0), np.random.Generator)

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        key=st.lists(st.integers(min_value=0, max_value=1000), max_size=4),
    )
    def test_determinism_property(self, seed, key):
        a = spawn_rng(seed, *key)
        b = spawn_rng(seed, *key)
        assert a.integers(0, 2**31) == b.integers(0, 2**31)

    def test_key_order_matters(self):
        a = spawn_rng(5, 1, 2)
        b = spawn_rng(5, 2, 1)
        assert not np.array_equal(a.random(16), b.random(16))
