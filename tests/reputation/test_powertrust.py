"""Tests for the simplified PowerTrust implementation."""

import numpy as np
import pytest

from repro.reputation.base import IntervalRatings, Rating
from repro.reputation.powertrust import PowerTrust


def interval(n, ratings):
    iv = IntervalRatings(n)
    for i, j, v in ratings:
        iv.add(Rating(i, j, v))
    return iv


class TestConstruction:
    def test_rejects_bad_power_count(self):
        with pytest.raises(ValueError):
            PowerTrust(5, n_power_nodes=0)
        with pytest.raises(ValueError):
            PowerTrust(5, n_power_nodes=6)

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            PowerTrust(5, power_weight=1.0)

    def test_initial_uniform(self):
        pt = PowerTrust(4, n_power_nodes=2)
        assert np.allclose(pt.reputations, 0.25)

    def test_name(self):
        assert PowerTrust(3, n_power_nodes=1).name == "PowerTrust"


class TestDynamics:
    def test_power_nodes_elected_from_top(self):
        pt = PowerTrust(6, n_power_nodes=2, power_weight=0.1)
        ratings = [(i, 5, 1.0) for i in range(5)] + [(i, 4, 1.0) for i in range(4)]
        pt.update(interval(6, ratings))
        pt.update(interval(6, ratings))
        assert set(pt.power_nodes) == {4, 5}

    def test_well_rated_node_rises(self):
        pt = PowerTrust(6, n_power_nodes=2)
        ratings = [(i, 5, 1.0) for i in range(5)]
        reps = pt.update(interval(6, ratings))
        assert reps[5] == reps.max()

    def test_reputations_normalised(self):
        pt = PowerTrust(5, n_power_nodes=2)
        reps = pt.update(interval(5, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]))
        assert reps.sum() == pytest.approx(1.0)
        assert np.all(reps >= 0)

    def test_power_set_adapts(self):
        """Unlike EigenTrust's fixed pre-trusted peers, the anchor set moves
        with the reputations."""
        pt = PowerTrust(6, n_power_nodes=1, power_weight=0.1)
        pt.update(interval(6, [(i, 5, 1.0) for i in range(5)]))
        pt.update(interval(6, [(i, 5, 1.0) for i in range(5)]))
        first = pt.power_nodes
        # Shift all praise to node 0 for several rounds (node 0 also
        # re-rates, so its earlier endorsement of node 5 dilutes away).
        for _ in range(8):
            pt.update(
                interval(6, [(i, 0, 5.0) for i in range(1, 6)] + [(0, 1, 5.0)])
            )
        assert pt.power_nodes != first

    def test_reset(self):
        pt = PowerTrust(4, n_power_nodes=1)
        pt.update(interval(4, [(0, 1, 1.0)]))
        pt.reset()
        assert np.allclose(pt.reputations, 0.25)
        assert pt.power_nodes == ()

    def test_size_mismatch_rejected(self):
        pt = PowerTrust(4, n_power_nodes=1)
        with pytest.raises(ValueError):
            pt.update(IntervalRatings(5))


class TestSocialTrustCompatibility:
    def test_wrappable(self):
        from repro.core import SocialTrust
        from repro.social import InteractionLedger, InterestProfiles
        from repro.social.generators import paper_social_network
        from repro.utils.rng import spawn_rng

        n = 10
        rng = spawn_rng(3, 0)
        network = paper_social_network(n, [0, 1], rng)
        interactions = InteractionLedger(n)
        profiles = InterestProfiles(n, 4)
        for i in range(n):
            profiles.set_declared(i, {i % 4})
        st = SocialTrust(
            PowerTrust(n, n_power_nodes=2), network, interactions, profiles
        )
        assert st.name == "PowerTrust+SocialTrust"
        iv = interval(n, [(0, 1, 1.0), (2, 3, 1.0)])
        for i, j in ((0, 1), (2, 3)):
            interactions.record(i, j)
        reps = st.update(iv)
        assert reps.sum() == pytest.approx(1.0)
