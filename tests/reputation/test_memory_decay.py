"""Tests for fading-memory reputation (TrustGuard-style recency weighting)."""

import pytest

from repro.reputation.base import IntervalRatings, Rating
from repro.reputation.ebay import EBayModel
from repro.reputation.eigentrust import EigenTrust

N = 5


def interval(ratings, n=N):
    iv = IntervalRatings(n)
    for i, j, v in ratings:
        iv.add(Rating(i, j, v))
    return iv


class TestEigenTrustDecay:
    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            EigenTrust(N, memory_decay=0.0)
        with pytest.raises(ValueError):
            EigenTrust(N, memory_decay=1.5)

    def test_default_infinite_memory(self):
        et = EigenTrust(N, [0])
        et.update(interval([(0, 1, 1.0)]))
        et.update(IntervalRatings(N))
        assert et.local_trust[0, 1] == 1.0

    def test_decay_fades_history(self):
        et = EigenTrust(N, [0], memory_decay=0.5)
        et.update(interval([(0, 1, 1.0)]))
        et.update(IntervalRatings(N))
        et.update(IntervalRatings(N))
        assert et.local_trust[0, 1] == pytest.approx(0.25)

    def test_recent_behaviour_dominates(self):
        """A reformed node regains standing faster with fading memory."""
        history = [(1, 2, -1.0)] * 1  # old bad behaviour toward node 2
        recent = [(1, 2, 1.0)]
        fading = EigenTrust(N, [0], memory_decay=0.5)
        lifetime = EigenTrust(N, [0], memory_decay=1.0)
        for system in (fading, lifetime):
            for _ in range(4):
                system.update(interval(history))
            for _ in range(2):
                system.update(interval(recent))
        # Fading memory has mostly forgotten the -1s: local trust higher.
        assert fading.local_trust[1, 2] > lifetime.local_trust[1, 2]


class TestEBayDecay:
    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            EBayModel(N, memory_decay=0.0)

    def test_decay_fades_scores(self):
        model = EBayModel(N, memory_decay=0.5)
        model.update(interval([(0, 1, 1.0)]))
        model.update(IntervalRatings(N))
        assert model.raw_scores[1] == pytest.approx(0.5)

    def test_whitewashed_reputation_fades_naturally(self):
        """With fading memory, an inactive node's standing erodes — the
        flip side is that a bad record also erodes, which is why lifetime
        memory remains the default."""
        model = EBayModel(N, memory_decay=0.8)
        for _ in range(3):
            model.update(interval([(0, 1, 1.0), (2, 1, 1.0)]))
        peak = model.raw_scores[1]
        for _ in range(10):
            model.update(IntervalRatings(N))
        assert model.raw_scores[1] < 0.2 * peak
