"""Tests for the per-interval rating ledger."""

import pytest

from repro.reputation.base import Rating
from repro.reputation.ledger import RatingLedger


class TestRatingLedger:
    def test_record_and_drain(self):
        ledger = RatingLedger(3)
        ledger.record(Rating(0, 1, 1.0))
        interval = ledger.drain()
        assert interval.value_sum[0, 1] == 1.0

    def test_drain_resets(self):
        ledger = RatingLedger(3)
        ledger.record(Rating(0, 1, 1.0))
        ledger.drain()
        second = ledger.drain()
        assert second.value_sum.sum() == 0.0

    def test_total_recorded_survives_drain(self):
        ledger = RatingLedger(3)
        ledger.record(Rating(0, 1, 1.0))
        ledger.drain()
        ledger.record(Rating(1, 2, -1.0))
        assert ledger.total_recorded == 2

    def test_record_batch(self):
        ledger = RatingLedger(3)
        ledger.record_batch(0, 1, 1.0, 20)
        interval = ledger.drain()
        assert interval.value_sum[0, 1] == 20.0
        assert interval.pos_counts[0, 1] == 20

    def test_record_batch_negative(self):
        ledger = RatingLedger(3)
        ledger.record_batch(0, 1, -1.0, 5)
        interval = ledger.drain()
        assert interval.neg_counts[0, 1] == 5

    def test_batch_equals_loop(self):
        a = RatingLedger(3)
        b = RatingLedger(3)
        a.record_batch(0, 2, 1.0, 7)
        for _ in range(7):
            b.record(Rating(0, 2, 1.0))
        ia, ib = a.drain(), b.drain()
        assert (ia.value_sum == ib.value_sum).all()
        assert (ia.pos_counts == ib.pos_counts).all()

    def test_peek_does_not_drain(self):
        ledger = RatingLedger(3)
        ledger.record(Rating(0, 1, 1.0))
        assert ledger.peek().value_sum[0, 1] == 1.0
        assert ledger.drain().value_sum[0, 1] == 1.0

    def test_peek_returns_copy(self):
        ledger = RatingLedger(3)
        ledger.record(Rating(0, 1, 1.0))
        peeked = ledger.peek()
        peeked.value_sum[0, 1] = 42.0
        assert ledger.drain().value_sum[0, 1] == 1.0

    def test_rejects_out_of_range(self):
        ledger = RatingLedger(2)
        with pytest.raises(IndexError):
            ledger.record(Rating(0, 5, 1.0))
        with pytest.raises(IndexError):
            ledger.record_batch(0, 5, 1.0, 1)

    def test_batch_rejects_self(self):
        ledger = RatingLedger(3)
        with pytest.raises(ValueError):
            ledger.record_batch(1, 1, 1.0, 2)

    def test_batch_rejects_zero_count(self):
        ledger = RatingLedger(3)
        with pytest.raises(ValueError):
            ledger.record_batch(0, 1, 1.0, 0)


class TestRecordMany:
    def test_equivalent_to_scalar_ratings(self):
        import numpy as np

        raters = np.array([0, 1, 0, 2])
        ratees = np.array([1, 2, 1, 0])
        values = np.array([1.0, -1.0, 1.0, -1.0])
        batched = RatingLedger(3)
        batched.record_many(raters, ratees, values)
        scalar = RatingLedger(3)
        for i, j, v in zip(raters, ratees, values):
            scalar.record(Rating(int(i), int(j), float(v)))
        got = batched.drain()
        want = scalar.drain()
        assert np.array_equal(got.value_sum, want.value_sum)
        assert np.array_equal(got.pos_counts, want.pos_counts)
        assert np.array_equal(got.neg_counts, want.neg_counts)

    def test_self_ratings_rejected(self):
        import numpy as np

        ledger = RatingLedger(3)
        with pytest.raises(ValueError):
            ledger.record_many(
                np.array([0, 1]), np.array([0, 2]), np.array([1.0, 1.0])
            )
