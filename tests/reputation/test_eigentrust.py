"""Tests for the EigenTrust implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reputation.base import IntervalRatings, Rating
from repro.reputation.eigentrust import EigenTrust


def interval(n, ratings):
    iv = IntervalRatings(n)
    for i, j, v in ratings:
        iv.add(Rating(i, j, v))
    return iv


class TestConstruction:
    def test_rejects_bad_pretrust_weight(self):
        with pytest.raises(ValueError):
            EigenTrust(4, pretrust_weight=1.0)
        with pytest.raises(ValueError):
            EigenTrust(4, pretrust_weight=-0.1)

    def test_rejects_out_of_range_pretrusted(self):
        with pytest.raises(ValueError):
            EigenTrust(4, [5])

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            EigenTrust(4, epsilon=0)

    def test_initial_reputations_are_pretrust(self):
        et = EigenTrust(4, [0, 1], pretrust_weight=0.2)
        assert np.allclose(et.reputations, [0.5, 0.5, 0, 0])

    def test_no_pretrusted_uniform(self):
        et = EigenTrust(4)
        assert np.allclose(et.reputations, 0.25)

    def test_name(self):
        assert EigenTrust(2).name == "EigenTrust"


class TestNormalizedLocal:
    def test_rows_stochastic(self):
        et = EigenTrust(3, [0])
        et.update(interval(3, [(1, 2, 1.0), (1, 0, 1.0), (2, 0, 1.0)]))
        c = et.normalized_local()
        assert np.allclose(c.sum(axis=1), 1.0)

    def test_negative_trust_clipped(self):
        et = EigenTrust(3, [0])
        et.update(interval(3, [(1, 2, -5.0), (1, 0, 1.0)]))
        c = et.normalized_local()
        assert c[1, 2] == 0.0
        assert c[1, 0] == 1.0

    def test_empty_row_falls_back_to_pretrust(self):
        et = EigenTrust(3, [0])
        et.update(interval(3, [(1, 2, 1.0)]))
        c = et.normalized_local()
        assert np.allclose(c[2], [1.0, 0.0, 0.0])

    def test_diagonal_zeroed(self):
        et = EigenTrust(3, [0])
        iv = IntervalRatings(3)
        iv.value_sum[1, 1] = 5.0  # malformed input guarded at aggregation
        et.update(iv)
        assert et.normalized_local()[1, 1] == 0.0


class TestUpdate:
    def test_reputations_sum_to_one(self):
        et = EigenTrust(4, [0])
        et.update(interval(4, [(1, 2, 1.0), (2, 3, 1.0), (3, 1, 1.0)]))
        assert et.reputations.sum() == pytest.approx(1.0)

    def test_reputations_non_negative(self):
        et = EigenTrust(4, [0])
        et.update(interval(4, [(1, 2, -1.0), (2, 3, 1.0)]))
        assert np.all(et.reputations >= 0)

    def test_well_rated_node_beats_unrated(self):
        et = EigenTrust(5, [0], pretrust_weight=0.1)
        ratings = [(i, 4, 1.0) for i in range(4)]
        et.update(interval(5, ratings))
        reps = et.reputations
        assert reps[4] > reps[1]

    def test_accumulates_across_intervals(self):
        et = EigenTrust(3, [0], pretrust_weight=0.1)
        et.update(interval(3, [(0, 1, 1.0)]))
        r1 = et.reputations[1]
        et.update(interval(3, [(0, 1, 1.0), (2, 1, 1.0)]))
        assert et.local_trust[0, 1] == 2.0
        assert et.reputations[1] >= r1 * 0.5  # still prominent

    def test_mutual_collusion_loop_inflates(self):
        """The PCM amplification EigenTrust is vulnerable to (Fig. 8(a))."""
        et = EigenTrust(6, [0], pretrust_weight=0.1)
        ratings = [(4, 5, 30.0), (5, 4, 30.0)]
        # Mass must be able to leave the pre-trusted source, and the
        # colluders need a trickle of external trust to amplify.
        ratings += [(0, 1, 1.0), (0, 2, 1.0)]
        ratings += [(1, 4, 1.0), (2, 5, 1.0), (1, 3, 1.0), (2, 3, 1.0)]
        et.update(interval(6, ratings))
        reps = et.reputations
        assert reps[4] > reps[3]
        assert reps[5] > reps[3]

    def test_size_mismatch_rejected(self):
        et = EigenTrust(3, [0])
        with pytest.raises(ValueError):
            et.update(IntervalRatings(4))

    def test_last_iterations_positive(self):
        et = EigenTrust(3, [0])
        et.update(interval(3, [(1, 2, 1.0)]))
        assert et.last_iterations >= 1

    def test_converges_within_bound(self):
        et = EigenTrust(10, [0], max_iterations=500)
        ratings = [(i, (i + 1) % 10, 1.0) for i in range(10)]
        et.update(interval(10, ratings))
        assert et.last_iterations < 500

    def test_local_trust_read_only(self):
        et = EigenTrust(3, [0])
        with pytest.raises(ValueError):
            et.local_trust[0, 1] = 1.0


class TestReset:
    def test_reset_restores_initial(self):
        et = EigenTrust(3, [0])
        et.update(interval(3, [(1, 2, 1.0)]))
        et.reset()
        assert np.allclose(et.reputations, [1.0, 0.0, 0.0])
        assert et.local_trust.sum() == 0.0


class TestStationaryProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        ratings=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5), st.sampled_from([-1.0, 1.0])),
            max_size=40,
        )
    )
    def test_fixed_point(self, ratings):
        """The converged vector satisfies t = (1-a) C^T t + a p."""
        et = EigenTrust(6, [0], pretrust_weight=0.2, epsilon=1e-13)
        iv = IntervalRatings(6)
        for i, j, v in ratings:
            if i != j:
                iv.add(Rating(i, j, v))
        t = et.update(iv)
        c = et.normalized_local()
        p = np.zeros(6)
        p[0] = 1.0
        expected = 0.8 * (c.T @ t) + 0.2 * p
        assert np.allclose(t, expected, atol=1e-8)
