"""Tests for GossipTrust push-sum aggregation."""

import numpy as np
import pytest

from repro.reputation.base import IntervalRatings, Rating
from repro.reputation.gossip import GossipTrust

N = 8


def interval(ratings, n=N):
    iv = IntervalRatings(n)
    for i, j, v in ratings:
        iv.add(Rating(i, j, v))
    return iv


class TestConstruction:
    def test_rejects_bad_rounds(self):
        with pytest.raises(ValueError):
            GossipTrust(4, rounds=0)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            GossipTrust(4, convergence_tolerance=0)

    def test_name(self):
        assert GossipTrust(3).name == "GossipTrust"


class TestConvergence:
    def test_consensus_matches_centralised_average(self):
        """Push-sum must converge to the column means of the row-stochastic
        local trust — the same aggregate a coordinator would compute."""
        gossip = GossipTrust(N, rounds=200, convergence_tolerance=1e-10)
        ratings = [(i, (i + 1) % N, 1.0) for i in range(N)]
        ratings += [(i, 5, 1.0) for i in range(4)]
        reps = gossip.update(interval(ratings))
        # Centralised reference.
        local = np.zeros((N, N))
        for i, j, v in ratings:
            local[i, j] += v
        rows = local.sum(axis=1, keepdims=True)
        c = np.divide(local, rows, out=np.zeros_like(local), where=rows > 0)
        expected = c.mean(axis=0)
        expected = expected / expected.sum()
        assert np.allclose(reps, expected, atol=1e-6)

    def test_early_stopping(self):
        gossip = GossipTrust(N, rounds=500, convergence_tolerance=1e-4)
        gossip.update(interval([(0, 1, 1.0)]))
        assert gossip.last_rounds < 500
        assert gossip.last_disagreement < 1e-3

    def test_more_rounds_tighter_consensus(self):
        ratings = [(i, (i + 3) % N, 1.0) for i in range(N)]
        coarse = GossipTrust(N, rounds=5, convergence_tolerance=1e-15)
        fine = GossipTrust(N, rounds=120, convergence_tolerance=1e-15)
        coarse.update(interval(ratings))
        fine.update(interval(ratings))
        assert fine.last_disagreement <= coarse.last_disagreement

    def test_deterministic_per_seed(self):
        a = GossipTrust(N, seed=5)
        b = GossipTrust(N, seed=5)
        ratings = [(0, 1, 1.0), (2, 3, -1.0), (4, 5, 1.0)]
        assert np.allclose(a.update(interval(ratings)), b.update(interval(ratings)))


class TestReputationInterface:
    def test_distribution(self):
        gossip = GossipTrust(N)
        reps = gossip.update(interval([(0, 1, 1.0), (2, 3, 1.0)]))
        assert np.all(reps >= 0)
        assert reps.sum() == pytest.approx(1.0)

    def test_well_rated_node_rises(self):
        gossip = GossipTrust(N, rounds=150)
        ratings = [(i, 7, 1.0) for i in range(6)] + [(6, 0, 1.0)]
        reps = gossip.update(interval(ratings))
        assert reps[7] == reps.max()

    def test_reset(self):
        gossip = GossipTrust(N)
        gossip.update(interval([(0, 1, 1.0)]))
        gossip.reset()
        assert np.all(gossip.reputations == 0.0)

    def test_wrappable_by_socialtrust(self):
        from repro.core import SocialTrust
        from repro.social import InteractionLedger, InterestProfiles
        from repro.social.generators import paper_social_network
        from repro.utils.rng import spawn_rng

        rng = spawn_rng(2, 0)
        network = paper_social_network(N, [0, 1], rng)
        interactions = InteractionLedger(N)
        profiles = InterestProfiles(N, 4)
        for i in range(N):
            profiles.set_declared(i, {i % 4})
        st = SocialTrust(GossipTrust(N), network, interactions, profiles)
        assert st.name == "GossipTrust+SocialTrust"
        iv = interval([(0, 1, 1.0), (2, 3, 1.0)])
        interactions.record(0, 1)
        interactions.record(2, 3)
        assert st.update(iv).sum() == pytest.approx(1.0)
