"""Tests for Rating / IntervalRatings."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.reputation.base import IntervalRatings, Rating


class TestRating:
    def test_fields(self):
        r = Rating(rater=0, ratee=1, value=1.0, interest=3)
        assert (r.rater, r.ratee, r.value, r.interest) == (0, 1, 1.0, 3)

    def test_rejects_self_rating(self):
        with pytest.raises(ValueError):
            Rating(rater=2, ratee=2, value=1.0)

    def test_interest_optional(self):
        assert Rating(rater=0, ratee=1, value=-1.0).interest is None


class TestIntervalRatings:
    def test_add_positive(self):
        iv = IntervalRatings(3)
        iv.add(Rating(0, 1, 1.0))
        assert iv.value_sum[0, 1] == 1.0
        assert iv.pos_counts[0, 1] == 1
        assert iv.neg_counts[0, 1] == 0

    def test_add_negative(self):
        iv = IntervalRatings(3)
        iv.add(Rating(0, 1, -1.0))
        assert iv.value_sum[0, 1] == -1.0
        assert iv.neg_counts[0, 1] == 1

    def test_zero_value_counts_positive(self):
        iv = IntervalRatings(3)
        iv.add(Rating(0, 1, 0.0))
        assert iv.pos_counts[0, 1] == 1

    def test_counts_total(self):
        iv = IntervalRatings(3)
        iv.add(Rating(0, 1, 1.0))
        iv.add(Rating(0, 1, -1.0))
        assert iv.counts[0, 1] == 2

    def test_scaled_multiplies_values_keeps_counts(self):
        iv = IntervalRatings(2)
        iv.add(Rating(0, 1, 1.0))
        iv.add(Rating(0, 1, 1.0))
        w = np.full((2, 2), 0.25)
        out = iv.scaled(w)
        assert out.value_sum[0, 1] == pytest.approx(0.5)
        assert out.pos_counts[0, 1] == 2
        # Original untouched.
        assert iv.value_sum[0, 1] == 2.0

    def test_scaled_shape_mismatch(self):
        iv = IntervalRatings(2)
        with pytest.raises(ValueError):
            iv.scaled(np.ones((3, 3)))

    def test_copy_independent(self):
        iv = IntervalRatings(2)
        iv.add(Rating(0, 1, 1.0))
        c = iv.copy()
        c.value_sum[0, 1] = 99.0
        assert iv.value_sum[0, 1] == 1.0

    @given(
        ratings=st.lists(
            st.tuples(
                st.integers(0, 3),
                st.integers(0, 3),
                st.sampled_from([-1.0, 1.0]),
            ),
            max_size=40,
        )
    )
    def test_value_sum_equals_pos_minus_neg_for_unit_ratings(self, ratings):
        iv = IntervalRatings(4)
        for i, j, v in ratings:
            if i != j:
                iv.add(Rating(i, j, v))
        assert np.allclose(iv.value_sum, iv.pos_counts - iv.neg_counts)

    @given(weight=st.floats(0.0, 1.0))
    def test_scaling_bounds(self, weight):
        iv = IntervalRatings(2)
        iv.add(Rating(0, 1, 1.0))
        out = iv.scaled(np.full((2, 2), weight))
        assert 0.0 <= out.value_sum[0, 1] <= iv.value_sum[0, 1]
