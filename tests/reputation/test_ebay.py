"""Tests for the eBay reputation model."""

import numpy as np
import pytest

from repro.reputation.base import IntervalRatings, Rating
from repro.reputation.ebay import EBayModel


def interval(n, ratings):
    iv = IntervalRatings(n)
    for i, j, v in ratings:
        iv.add(Rating(i, j, v))
    return iv


class TestCountedRatings:
    def test_unanimous_positive_is_one(self):
        iv = interval(3, [(0, 1, 1.0)] * 5)
        counted = EBayModel.counted_ratings(iv)
        assert counted[0, 1] == 1.0

    def test_unanimous_negative_is_minus_one(self):
        iv = interval(3, [(0, 1, -1.0)] * 3)
        assert EBayModel.counted_ratings(iv)[0, 1] == -1.0

    def test_mixed_takes_mean(self):
        iv = interval(3, [(0, 1, 1.0), (0, 1, 1.0), (0, 1, -1.0), (0, 1, -1.0)])
        assert EBayModel.counted_ratings(iv)[0, 1] == 0.0

    def test_no_ratings_zero(self):
        assert EBayModel.counted_ratings(IntervalRatings(2))[0, 1] == 0.0

    def test_damped_ratings_carry_through(self):
        """A SocialTrust-scaled rating stream contributes a counted rating
        near zero instead of snapping back to +1."""
        iv = interval(2, [(0, 1, 1.0)] * 10)
        scaled = iv.scaled(np.full((2, 2), 0.05))
        counted = EBayModel.counted_ratings(scaled)
        assert counted[0, 1] == pytest.approx(0.05)


class TestPerRaterSum:
    def test_dedup_within_interval(self):
        """20 ratings from one rater count as one (the paper's eBay rule)."""
        model = EBayModel(3)
        model.update(interval(3, [(0, 2, 1.0)] * 20 + [(1, 2, 1.0)]))
        assert model.raw_scores[2] == pytest.approx(2.0)

    def test_distinct_raters_accumulate(self):
        model = EBayModel(4)
        model.update(interval(4, [(0, 3, 1.0), (1, 3, 1.0), (2, 3, -1.0)]))
        assert model.raw_scores[3] == pytest.approx(1.0)

    def test_across_intervals_accumulate(self):
        model = EBayModel(3)
        model.update(interval(3, [(0, 2, 1.0)]))
        model.update(interval(3, [(0, 2, 1.0)]))
        assert model.raw_scores[2] == pytest.approx(2.0)
        assert model.intervals_seen == 2


class TestNodeSign:
    def test_sign_caps_interval_gain(self):
        model = EBayModel(4, cycle_aggregation="node_sign")
        model.update(interval(4, [(0, 3, 1.0), (1, 3, 1.0), (2, 3, 1.0)]))
        assert model.raw_scores[3] == 1.0

    def test_net_negative_interval(self):
        model = EBayModel(4, cycle_aggregation="node_sign")
        model.update(interval(4, [(0, 3, -1.0), (1, 3, -1.0), (2, 3, 1.0)]))
        assert model.raw_scores[3] == -1.0

    def test_unrated_node_zero(self):
        model = EBayModel(3, cycle_aggregation="node_sign")
        model.update(interval(3, [(0, 1, 1.0)]))
        assert model.raw_scores[2] == 0.0

    def test_rejects_unknown_aggregation(self):
        with pytest.raises(ValueError):
            EBayModel(3, cycle_aggregation="bogus")


class TestReputations:
    def test_normalised_to_one(self):
        model = EBayModel(3)
        model.update(interval(3, [(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0)]))
        assert model.reputations.sum() == pytest.approx(1.0)

    def test_negative_scores_clipped(self):
        model = EBayModel(3)
        model.update(interval(3, [(0, 1, -1.0), (0, 2, 1.0)]))
        reps = model.reputations
        assert reps[1] == 0.0
        assert reps[2] == pytest.approx(1.0)

    def test_all_zero_before_updates(self):
        assert np.all(EBayModel(3).reputations == 0.0)

    def test_reset(self):
        model = EBayModel(3)
        model.update(interval(3, [(0, 1, 1.0)]))
        model.reset()
        assert np.all(model.raw_scores == 0.0)
        assert model.intervals_seen == 0

    def test_raw_scores_read_only(self):
        model = EBayModel(3)
        with pytest.raises(ValueError):
            model.raw_scores[0] = 5.0

    def test_size_mismatch_rejected(self):
        model = EBayModel(3)
        with pytest.raises(ValueError):
            model.update(IntervalRatings(2))

    def test_name(self):
        assert EBayModel(2).name == "eBay"
