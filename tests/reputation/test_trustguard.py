"""Tests for the TrustGuard-like similarity-weighted model."""

import numpy as np
import pytest

from repro.reputation.base import IntervalRatings, Rating
from repro.reputation.trustguard import SimilarityWeightedModel

N = 6


def interval(ratings, n=N):
    iv = IntervalRatings(n)
    for i, j, v in ratings:
        iv.add(Rating(i, j, v))
    return iv


class TestConstruction:
    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            SimilarityWeightedModel(4, deviation_scale=0.0)

    def test_initial_zero(self):
        assert np.all(SimilarityWeightedModel(4).reputations == 0.0)

    def test_name(self):
        assert SimilarityWeightedModel(3).name == "TrustGuard-like"


class TestCredibility:
    def test_consensus_rater_keeps_credibility(self):
        model = SimilarityWeightedModel(N)
        # Everyone agrees node 5 is good.
        model.update(interval([(i, 5, 1.0) for i in range(5)]))
        cred = model.credibilities()
        assert np.allclose(cred[:5], 1.0)

    def test_dissenter_loses_credibility(self):
        model = SimilarityWeightedModel(N)
        ratings = [(i, 5, 1.0) for i in range(4)] + [(4, 5, -1.0)]
        model.update(interval(ratings))
        cred = model.credibilities()
        assert cred[4] < cred[0]

    def test_no_history_full_credibility(self):
        model = SimilarityWeightedModel(N)
        model.update(interval([(0, 1, 1.0)]))
        assert model.credibilities()[3] == 1.0

    def test_clique_against_consensus_devalued(self):
        """The TrustGuard story: praising inside the clique while everyone
        else reports bad service costs the clique credibility."""
        model = SimilarityWeightedModel(N)
        ratings = [(0, 1, 1.0), (1, 0, 1.0)]  # clique praise
        ratings += [(i, 0, -1.0) for i in range(2, 6)]  # world disagrees
        ratings += [(i, 1, -1.0) for i in range(2, 6)]
        ratings += [(i, 5, 1.0) for i in range(2, 5)]  # honest baseline
        model.update(interval(ratings))
        cred = model.credibilities()
        assert cred[0] < cred[2]
        assert cred[1] < cred[2]


class TestReputations:
    def test_weighted_aggregation_suppresses_clique(self):
        model = SimilarityWeightedModel(N)
        ratings = [(0, 1, 1.0), (1, 0, 1.0)]
        ratings += [(i, 0, -1.0) for i in range(2, 6)]
        ratings += [(i, 1, -1.0) for i in range(2, 6)]
        ratings += [(i, 5, 1.0) for i in range(2, 5)]
        reps = model.update(interval(ratings))
        assert reps[5] > reps[0]
        assert reps[5] > reps[1]

    def test_blind_spot_unrated_clique_target(self):
        """When nobody outside the clique rates the boosted node, consensus
        IS the clique's praise — the blind spot motivating SocialTrust."""
        model = SimilarityWeightedModel(N)
        ratings = [(0, 1, 1.0)] * 1 + [(2, 1, 1.0)]
        # No outside information about node 1 at all.
        ratings += [(3, 5, 1.0), (4, 5, 1.0)]
        reps = model.update(interval(ratings))
        assert reps[1] > 0  # the boost stands

    def test_normalised(self):
        model = SimilarityWeightedModel(N)
        reps = model.update(interval([(0, 1, 1.0), (2, 3, 1.0)]))
        assert reps.sum() == pytest.approx(1.0)

    def test_reset(self):
        model = SimilarityWeightedModel(N)
        model.update(interval([(0, 1, 1.0)]))
        model.reset()
        assert np.all(model.reputations == 0.0)

    def test_accumulates_across_intervals(self):
        model = SimilarityWeightedModel(N)
        model.update(interval([(0, 1, 1.0)]))
        model.update(interval([(2, 1, 1.0)]))
        assert model.mean_ratings()[0, 1] == 1.0
        assert model.mean_ratings()[2, 1] == 1.0
