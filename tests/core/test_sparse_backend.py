"""Sparse coefficient core vs the dense seed path.

The sparse backend (:mod:`repro.core.sparse`) must agree with the dense
computers everywhere both are defined: full-matrix values, sampled pair
values, band summaries, and the detector's end-to-end damping weights.
Exact mode (``sparse_top_k=None``) has no approximation — only float
summation order differs — so the tolerance here is tight.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closeness import ClosenessComputer
from repro.core.config import SocialTrustConfig
from repro.core.detector import CollusionDetector, SparseDetectionResult
from repro.core.similarity import SimilarityComputer
from repro.core.sparse import (
    SparseClosenessComputer,
    SparseSimilarityComputer,
    embed_rows,
)
from repro.reputation.base import IntervalRatings
from repro.social.generators import paper_social_network
from repro.social.interactions import InteractionLedger, SparseInteractionLedger
from repro.social.interests import InterestProfiles
from repro.utils.rng import spawn_rng

from scipy import sparse

N = 16
N_INTERESTS = 6

CONFIG_VARIANTS = [
    SocialTrustConfig(coefficient_backend="sparse"),
    SocialTrustConfig(
        coefficient_backend="sparse", hardened=False, common_friend_aggregate="sum"
    ),
    SocialTrustConfig(coefficient_backend="sparse", center="global"),
]


def make_world(seed=0, *, sparse_ledger=False):
    rng = spawn_rng(seed, 0)
    network = paper_social_network(N, (1, 2, 3), rng)
    ledger = SparseInteractionLedger(N) if sparse_ledger else InteractionLedger(N)
    profiles = InterestProfiles(N, N_INTERESTS)
    for node in range(N):
        k = int(rng.integers(1, 4))
        profiles.set_declared(
            node, [int(v) for v in rng.choice(N_INTERESTS, size=k, replace=False)]
        )
    return network, ledger, profiles, rng


def seed_traffic(ledger, profiles, rng, rounds=3):
    for _ in range(rounds * N):
        i, j = int(rng.integers(0, N)), int(rng.integers(0, N))
        if i != j:
            ledger.record(i, j, float(rng.integers(1, 4)))
            profiles.record_request(i, int(rng.integers(0, N_INTERESTS)))


def dense_config(cfg: SocialTrustConfig) -> SocialTrustConfig:
    d = cfg.to_dict()
    d["coefficient_backend"] = "dense"
    return SocialTrustConfig(**d)


class TestClosenessEquivalence:
    @pytest.mark.parametrize("cfg", CONFIG_VARIANTS)
    def test_matrix_matches_dense(self, cfg):
        network, ledger, profiles, rng = make_world(3)
        seed_traffic(ledger, profiles, rng)
        got = SparseClosenessComputer(network, ledger, cfg).closeness_matrix()
        want = ClosenessComputer(network, ledger, dense_config(cfg)).closeness_matrix()
        np.testing.assert_allclose(got, want, atol=1e-12, rtol=0.0)

    def test_pair_values_match_matrix(self):
        network, ledger, profiles, rng = make_world(4)
        seed_traffic(ledger, profiles, rng)
        sc = SparseClosenessComputer(network, ledger, CONFIG_VARIANTS[0])
        matrix = sc.closeness_matrix()
        raters = np.repeat(np.arange(N), N)
        ratees = np.tile(np.arange(N), N)
        got = sc.pair_values(raters, ratees).reshape(N, N)
        np.testing.assert_allclose(got, matrix, atol=1e-12, rtol=0.0)

    def test_scalar_accessors_match_dense(self):
        network, ledger, profiles, rng = make_world(5)
        seed_traffic(ledger, profiles, rng)
        cfg = CONFIG_VARIANTS[0]
        sc = SparseClosenessComputer(network, ledger, cfg)
        dc = ClosenessComputer(network, ledger, dense_config(cfg))
        for i in range(0, N, 3):
            for j in range(N):
                if i != j:
                    assert sc.closeness(i, j) == pytest.approx(
                        dc.closeness(i, j), abs=1e-12
                    )

    def test_bands_match_dense(self):
        network, ledger, profiles, rng = make_world(6)
        seed_traffic(ledger, profiles, rng)
        cfg = CONFIG_VARIANTS[0]
        sc = SparseClosenessComputer(network, ledger, cfg)
        dc = ClosenessComputer(network, ledger, dense_config(cfg))
        rated = frozenset(range(1, 9))
        sb, db = sc.rater_band(0, rated), dc.rater_band(0, rated)
        assert sb.center == pytest.approx(db.center, abs=1e-12)
        assert sb.spread == pytest.approx(db.spread, abs=1e-12)
        pairs = [(0, 1), (2, 3), (1, 4)]
        sg, dg = sc.global_band(pairs), dc.global_band(pairs)
        assert sg.center == pytest.approx(dg.center, abs=1e-12)
        assert sg.spread == pytest.approx(dg.spread, abs=1e-12)


class TestSimilarityEquivalence:
    @pytest.mark.parametrize("hardened", [False, True])
    def test_matrix_matches_dense(self, hardened):
        network, ledger, profiles, rng = make_world(7)
        seed_traffic(ledger, profiles, rng)
        cfg = SocialTrustConfig(coefficient_backend="sparse", hardened=hardened)
        got = SparseSimilarityComputer(profiles, cfg).similarity_matrix()
        want = SimilarityComputer(profiles, dense_config(cfg)).similarity_matrix()
        np.testing.assert_allclose(got, want, atol=1e-12, rtol=0.0)

    def test_pair_values_match_matrix(self):
        network, ledger, profiles, rng = make_world(8)
        seed_traffic(ledger, profiles, rng)
        cfg = SocialTrustConfig(coefficient_backend="sparse")
        sc = SparseSimilarityComputer(profiles, cfg)
        matrix = sc.similarity_matrix()
        raters = np.repeat(np.arange(N), N)
        ratees = np.tile(np.arange(N), N)
        got = sc.pair_values(raters, ratees).reshape(N, N)
        np.testing.assert_allclose(got, matrix, atol=1e-12, rtol=0.0)


class TestIncrementalSparseCache:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 40), steps=st.integers(1, 8))
    def test_churn_matches_fresh_and_dense(self, seed, steps):
        network, ledger, profiles, rng = make_world(seed, sparse_ledger=True)
        dense_ledger = InteractionLedger(N)
        cfg = SocialTrustConfig(
            coefficient_backend="sparse", cache_rebuild_interval=3
        )
        cached = SparseClosenessComputer(network, ledger, cfg)
        cached.closeness_matrix()  # prime the incremental path
        for step in range(steps):
            kind = int(rng.integers(0, 3))
            if kind == 0:
                i, j = int(rng.integers(0, N)), int(rng.integers(0, N))
                if i == j:
                    continue
                ledger.record(i, j, 2.0)
                dense_ledger.record(i, j, 2.0)
            elif kind == 1:
                nodes = np.unique(rng.integers(0, N, size=3))
                ledger.decay_nodes(nodes, 0.5)
                dense_ledger.decay_nodes(nodes, 0.5)
            else:
                raters = rng.integers(0, N, size=2 * N)
                ratees = rng.integers(0, N, size=2 * N)
                keep = raters != ratees
                ledger.record_many(raters[keep], ratees[keep])
                dense_ledger.record_many(raters[keep], ratees[keep])
            got = np.asarray(cached.closeness_matrix())
            fresh = np.asarray(
                SparseClosenessComputer(network, ledger, cfg).closeness_matrix()
            )
            np.testing.assert_allclose(got, fresh, atol=1e-9, rtol=1e-9)
            want = ClosenessComputer(
                network, dense_ledger, dense_config(cfg)
            ).closeness_matrix()
            np.testing.assert_allclose(got, want, atol=1e-9, rtol=1e-9)

    def test_periodic_exact_rebuild_resets_drift_counter(self):
        network, ledger, profiles, rng = make_world(9, sparse_ledger=True)
        cfg = SocialTrustConfig(
            coefficient_backend="sparse", cache_rebuild_interval=2
        )
        sc = SparseClosenessComputer(network, ledger, cfg)
        seed_traffic(ledger, profiles, rng, rounds=1)
        sc.closeness_matrix()
        assert sc._t2_updates == 0  # full build
        ledger.record(0, 1, 1.0)
        sc.closeness_matrix()
        assert sc._t2_updates == 1  # one low-rank correction
        ledger.record(1, 2, 1.0)
        sc.closeness_matrix()
        ledger.record(2, 3, 1.0)
        sc.closeness_matrix()  # interval reached → exact rebuild
        assert sc._t2_updates == 0


class TestTopKTruncation:
    def test_rows_capped_and_strongest_kept(self):
        network, ledger, profiles, rng = make_world(10)
        seed_traffic(ledger, profiles, rng)
        k = 3
        cfg = SocialTrustConfig(coefficient_backend="sparse", sparse_top_k=k)
        full = SparseClosenessComputer(
            network, ledger, SocialTrustConfig(coefficient_backend="sparse")
        ).closeness_matrix()
        truncated = SparseClosenessComputer(network, ledger, cfg).closeness_matrix()
        full = np.asarray(full)
        truncated = np.asarray(truncated)
        for row in range(N):
            kept = np.flatnonzero(truncated[row])
            assert kept.size <= k
            np.testing.assert_allclose(truncated[row][kept], full[row][kept])
            if kept.size:
                dropped = np.setdiff1d(np.flatnonzero(full[row]), kept)
                if dropped.size:
                    assert full[row][dropped].max() <= full[row][kept].min() + 1e-12


class TestSparseDetector:
    def _interval(self, rng):
        interval = IntervalRatings(N)
        for _ in range(4 * N):
            i, j = int(rng.integers(0, N)), int(rng.integers(0, N))
            if i != j:
                interval.pos_counts[i, j] += 1
                interval.value_sum[i, j] += 1.0
        # A collusive pair far above the median frequency.
        interval.pos_counts[0, 1] += 12
        interval.value_sum[0, 1] += 12.0
        interval.neg_counts[2, 3] += 9
        interval.value_sum[2, 3] -= 9.0
        return interval

    def _detectors(self, seed=11):
        network, ledger, profiles, rng = make_world(seed)
        seed_traffic(ledger, profiles, rng)
        sparse_cfg = SocialTrustConfig(coefficient_backend="sparse")
        dense_cfg = dense_config(sparse_cfg)
        dense_det = CollusionDetector(
            ClosenessComputer(network, ledger, dense_cfg),
            SimilarityComputer(profiles, dense_cfg),
            dense_cfg,
        )
        sparse_det = CollusionDetector(
            SparseClosenessComputer(network, ledger, sparse_cfg),
            SparseSimilarityComputer(profiles, sparse_cfg),
            sparse_cfg,
        )
        return dense_det, sparse_det, rng

    def test_analyze_dispatch_matches_dense(self):
        dense_det, sparse_det, rng = self._detectors()
        interval = self._interval(rng)
        reputations = np.full(N, 1.0 / N)
        rated = interval.counts > 0
        flag_counts = np.zeros((N, N))
        flag_counts[0, 1] = 2.0
        want = dense_det.analyze(interval, reputations, rated, flag_counts)
        got = sparse_det.analyze(interval, reputations, rated, flag_counts)
        assert want.findings, "scenario must actually flag pairs"
        np.testing.assert_allclose(got.weights, want.weights, atol=1e-9, rtol=1e-9)
        assert [(f.rater, f.ratee) for f in got.findings] == [
            (f.rater, f.ratee) for f in want.findings
        ]
        for g, w in zip(got.findings, want.findings):
            assert g.reasons == w.reasons
            assert g.weight == pytest.approx(w.weight, rel=1e-9, abs=1e-9)
        for field in (
            "pos_frequency",
            "neg_frequency",
            "low_reputation",
            "closeness_low",
            "closeness_high",
            "similarity_low",
            "similarity_high",
        ):
            assert getattr(got.thresholds, field) == pytest.approx(
                getattr(want.thresholds, field), rel=1e-9, abs=1e-12
            )

    def test_analyze_sparse_returns_pair_set_only(self):
        _, sparse_det, rng = self._detectors(12)
        interval = self._interval(rng)
        reputations = np.full(N, 1.0 / N)
        rated = sparse.csr_matrix(interval.counts > 0)
        result = sparse_det.analyze_sparse(
            sparse.csr_matrix(interval.pos_counts),
            sparse.csr_matrix(interval.neg_counts),
            reputations,
            rated,
        )
        assert isinstance(result, SparseDetectionResult)
        assert result.pairs.shape == (result.pair_weights.shape[0], 2)
        assert result.pairs.shape[0] > 0
        assert np.all(result.pair_weights <= 1.0)
        assert np.any(result.pair_weights < 1.0)
        dense_w = result.weights_dense()
        assert dense_w.shape == (N, N)
        ones = np.ones((N, N))
        ones[result.pairs[:, 0], result.pairs[:, 1]] = result.pair_weights
        np.testing.assert_array_equal(dense_w, ones)

    def test_no_flags_reports_pinned_thresholds(self):
        """Satellite: the early return must echo configured pins, not sentinels."""
        network, ledger, profiles, rng = make_world(13)
        seed_traffic(ledger, profiles, rng)
        for backend in ("dense", "sparse"):
            cfg = SocialTrustConfig(
                coefficient_backend=backend,
                pos_frequency_threshold=50.0,
                neg_frequency_threshold=50.0,
                closeness_low=0.2,
                closeness_high=0.8,
                similarity_low=0.1,
                similarity_high=0.9,
            )
            if backend == "dense":
                det = CollusionDetector(
                    ClosenessComputer(network, ledger, cfg),
                    SimilarityComputer(profiles, cfg),
                    cfg,
                )
            else:
                det = CollusionDetector(
                    SparseClosenessComputer(network, ledger, cfg),
                    SparseSimilarityComputer(profiles, cfg),
                    cfg,
                )
            interval = IntervalRatings(N)
            interval.pos_counts[0, 1] = 1.0  # below threshold: no flags
            result = det.analyze(
                interval, np.full(N, 1.0 / N), interval.counts > 0
            )
            assert not result.findings
            assert result.thresholds.closeness_low == 0.2
            assert result.thresholds.closeness_high == 0.8
            assert result.thresholds.similarity_low == 0.1
            assert result.thresholds.similarity_high == 0.9

    def test_no_flags_unpinned_reports_open_band(self):
        _, sparse_det, rng = self._detectors(14)
        interval = IntervalRatings(N)
        result = sparse_det.analyze(
            interval, np.full(N, 1.0 / N), interval.counts > 0
        )
        assert not result.findings
        assert result.thresholds.closeness_low == 0.0
        assert result.thresholds.closeness_high == np.inf


class TestRestoreStateValidation:
    def test_sparse_closeness_rejects_wrong_shape(self):
        network, ledger, profiles, rng = make_world(15)
        seed_traffic(ledger, profiles, rng)
        cfg = SocialTrustConfig(coefficient_backend="sparse")
        sc = SparseClosenessComputer(network, ledger, cfg)
        sc.closeness_matrix()
        state = sc.state_dict()
        bad = dict(state)
        bad["a"] = sparse.csr_matrix((N + 1, N + 1))
        with pytest.raises(ValueError, match="different network size"):
            sc.restore_state(bad)

    def test_sparse_closeness_rejects_dense_payload(self):
        network, ledger, profiles, rng = make_world(15)
        cfg = SocialTrustConfig(coefficient_backend="sparse")
        sc = SparseClosenessComputer(network, ledger, cfg)
        sc.closeness_matrix()
        state = sc.state_dict()
        bad = dict(state)
        bad["t1"] = np.zeros((N, N))
        with pytest.raises(ValueError):
            sc.restore_state(bad)

    def test_sparse_similarity_rejects_wrong_size(self):
        network, ledger, profiles, rng = make_world(16)
        cfg = SocialTrustConfig(coefficient_backend="sparse")
        sc = SparseSimilarityComputer(profiles, cfg)
        with pytest.raises(ValueError):
            sc.restore_state({"n_nodes": N + 3})

    def test_roundtrip_restores_bit_identical_matrix(self):
        network, ledger, profiles, rng = make_world(17, sparse_ledger=True)
        seed_traffic(ledger, profiles, rng)
        cfg = SocialTrustConfig(coefficient_backend="sparse")
        sc = SparseClosenessComputer(network, ledger, cfg)
        ledger.record(0, 1, 2.0)
        before = np.asarray(sc.closeness_matrix()).copy()
        state = sc.state_dict()
        other = SparseClosenessComputer(network, ledger, cfg)
        other.restore_state(state)
        np.testing.assert_array_equal(
            np.asarray(other.closeness_matrix()), before
        )


class TestEmbedRows:
    def test_scatters_block_into_named_rows(self):
        block = sparse.csr_matrix(np.array([[1.0, 0.0, 2.0], [0.0, 3.0, 0.0]]))
        out = embed_rows(block, np.array([0, 2]), 3).toarray()
        want = np.zeros((3, 3))
        want[0] = [1.0, 0.0, 2.0]
        want[2] = [0.0, 3.0, 0.0]
        np.testing.assert_array_equal(out, want)

    def test_rejects_unsorted_rows(self):
        block = sparse.csr_matrix(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            embed_rows(block, np.array([2, 0]), 3)
