"""Tests for interest similarity (Eqs. (7), (11))."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import SocialTrustConfig
from repro.core.similarity import SimilarityComputer, overlap_similarity
from repro.social.interests import InterestProfiles


class TestOverlapSimilarity:
    def test_identical_sets(self):
        assert overlap_similarity({1, 2}, {1, 2}) == 1.0

    def test_disjoint_sets(self):
        assert overlap_similarity({1}, {2}) == 0.0

    def test_subset_is_one(self):
        assert overlap_similarity({1}, {1, 2, 3}) == 1.0

    def test_partial(self):
        assert overlap_similarity({1, 2, 3}, {2, 3, 4, 5}) == pytest.approx(2 / 3)

    def test_empty_is_zero(self):
        assert overlap_similarity(set(), {1}) == 0.0

    def test_symmetric(self):
        assert overlap_similarity({1, 2}, {2, 9}) == overlap_similarity({2, 9}, {1, 2})

    @given(
        a=st.sets(st.integers(0, 10), max_size=8),
        b=st.sets(st.integers(0, 10), max_size=8),
    )
    def test_bounded(self, a, b):
        assert 0.0 <= overlap_similarity(a, b) <= 1.0


@pytest.fixture
def profiles():
    p = InterestProfiles(4, 6)
    p.set_declared(0, {0, 1})
    p.set_declared(1, {1, 2})
    p.set_declared(2, {3, 4, 5})
    p.set_declared(3, {0, 1})
    return p


class TestPlainSimilarity:
    def test_uses_declared_sets(self, profiles):
        sc = SimilarityComputer(profiles, SocialTrustConfig(hardened=False))
        assert sc.similarity(0, 1) == pytest.approx(0.5)
        assert sc.similarity(0, 2) == 0.0
        assert sc.similarity(0, 3) == 1.0

    def test_ignores_behaviour(self, profiles):
        profiles.record_request(0, 5, 10.0)
        sc = SimilarityComputer(profiles, SocialTrustConfig(hardened=False))
        assert sc.similarity(0, 2) == 0.0

    def test_self_rejected(self, profiles):
        sc = SimilarityComputer(profiles, SocialTrustConfig(hardened=False))
        with pytest.raises(ValueError):
            sc.similarity(1, 1)


class TestHardenedSimilarity:
    def test_zero_without_requests(self, profiles):
        sc = SimilarityComputer(profiles, SocialTrustConfig(hardened=True))
        assert sc.similarity(0, 1) == 0.0

    def test_eq11_formula(self, profiles):
        profiles.record_request(0, 1, 4.0)  # w0 = [0, 1, ...]
        profiles.record_request(1, 1, 1.0)
        profiles.record_request(1, 2, 3.0)  # w1 = [0, 0.25, 0.75, ...]
        sc = SimilarityComputer(profiles, SocialTrustConfig(hardened=True))
        # Shared effective interest: {1}; numerator = 1 * 0.25;
        # denominator = min(|{0,1}|, |{1,2}|) = 2.
        assert sc.similarity(0, 1) == pytest.approx(0.25 / 2)

    def test_padding_profile_gains_nothing(self, profiles):
        """A colluder declaring matching interests it never requests stays
        dissimilar (Section 4.4, evading B3)."""
        profiles.record_request(0, 0, 5.0)
        profiles.record_request(2, 3, 5.0)
        sc = SimilarityComputer(profiles, SocialTrustConfig(hardened=True))
        before = sc.similarity(0, 2)
        profiles.set_declared(2, {0, 1, 3})  # falsified to match node 0
        after = sc.similarity(0, 2)
        assert before == 0.0
        assert after == 0.0  # no requests on the padded interests

    def test_deleting_declared_interest_does_not_hide_behaviour(self, profiles):
        """Evading B4: requests on a deleted interest still reveal it."""
        profiles.record_request(0, 1, 5.0)
        profiles.record_request(1, 1, 5.0)
        sc = SimilarityComputer(profiles, SocialTrustConfig(hardened=True))
        with_declared = sc.similarity(0, 1)
        profiles.set_declared(1, {2})  # hide the shared interest 1
        without_declared = sc.similarity(0, 1)
        assert without_declared > 0.0
        assert without_declared >= with_declared * 0.5

    def test_matrix_matches_scalar(self, profiles):
        rng = np.random.default_rng(3)
        for node in range(4):
            for _ in range(5):
                profiles.record_request(node, int(rng.integers(0, 6)))
        for hardened in (False, True):
            sc = SimilarityComputer(profiles, SocialTrustConfig(hardened=hardened))
            matrix = sc.similarity_matrix()
            for i in range(4):
                for j in range(4):
                    if i == j:
                        assert matrix[i, j] == 0.0
                    else:
                        assert matrix[i, j] == pytest.approx(sc.similarity(i, j)), (
                            hardened,
                            i,
                            j,
                        )

    def test_matrix_symmetric_plain(self, profiles):
        sc = SimilarityComputer(profiles, SocialTrustConfig(hardened=False))
        m = sc.similarity_matrix()
        assert np.allclose(m, m.T)


class TestBands:
    def test_rater_band(self, profiles):
        sc = SimilarityComputer(profiles, SocialTrustConfig(hardened=False))
        band = sc.rater_band(0, {1, 2, 3})
        assert band.size == 3
        assert band.center == pytest.approx((0.5 + 0.0 + 1.0) / 3)

    def test_global_band_empty(self, profiles):
        sc = SimilarityComputer(profiles, SocialTrustConfig(hardened=False))
        assert sc.global_band([]) is None
