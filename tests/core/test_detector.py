"""Tests for the collusion detector (B1-B4 trigger logic + damping)."""

import numpy as np
import pytest

from repro.core.closeness import ClosenessComputer
from repro.core.config import GaussianCenter, SocialTrustConfig
from repro.core.detector import CollusionDetector, SuspicionReason
from repro.core.similarity import SimilarityComputer
from repro.reputation.base import IntervalRatings
from repro.social.graph import SocialGraph, Relationship
from repro.social.interactions import InteractionLedger
from repro.social.interests import InterestProfiles

N = 8


def build_detector(config=None, *, colluder_pair=(0, 1)):
    """A small world: the colluder pair is adjacent with several ties and a
    dominating interaction share; everyone else interacts lightly."""
    config = config or SocialTrustConfig(
        pos_frequency_threshold=10.0,
        neg_frequency_threshold=10.0,
        closeness_low=0.05,
        closeness_high=0.5,
        similarity_low=0.1,
        similarity_high=0.3,
        low_reputation_threshold=0.01,
    )
    g = SocialGraph(N)
    a, b = colluder_pair
    g.add_friendship(a, b, [Relationship()] * 4)
    for i in range(N):
        for j in range(i + 1, N):
            if (i, j) != (a, b) and (i + j) % 2 == 0:
                g.add_friendship(i, j)
    ledger = InteractionLedger(N)
    ledger.record(a, b, 50.0)
    ledger.record(b, a, 50.0)
    for i in range(N):
        for j in range(N):
            if i != j and (i, j) != (a, b) and (j, i) != (a, b):
                ledger.record(i, j, 1.0)
    profiles = InterestProfiles(N, 6)
    profiles.set_declared(a, {0})
    profiles.set_declared(b, {1})
    for i in range(N):
        if i not in (a, b):
            profiles.set_declared(i, {2, 3})
            profiles.record_request(i, 2, 3.0)
            profiles.record_request(i, 3, 1.0)
    profiles.record_request(a, 0, 4.0)
    profiles.record_request(b, 1, 4.0)
    closeness = ClosenessComputer(g, ledger, config)
    similarity = SimilarityComputer(profiles, config)
    return CollusionDetector(closeness, similarity, config), config


def interval_with(pairs, n=N):
    iv = IntervalRatings(n)
    for (i, j, value, count) in pairs:
        if value >= 0:
            iv.pos_counts[i, j] += count
        else:
            iv.neg_counts[i, j] += count
        iv.value_sum[i, j] += value * count
    return iv


def background_ratings():
    """Light genuine rating activity so bands are well defined."""
    out = []
    for i in range(N):
        for j in range(N):
            if i != j:
                out.append((i, j, 1.0, 2))
    return out


class TestFrequencyGate:
    def test_no_flag_below_threshold(self):
        detector, _ = build_detector()
        iv = interval_with(background_ratings())
        result = detector.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool))
        assert result.n_adjusted == 0
        assert np.all(result.weights == 1.0)

    def test_flag_above_threshold(self):
        detector, _ = build_detector()
        iv = interval_with(background_ratings() + [(0, 1, 1.0, 40)])
        result = detector.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool))
        pairs = {(f.rater, f.ratee) for f in result.findings}
        assert (0, 1) in pairs

    def test_derived_threshold_from_theta(self):
        cfg = SocialTrustConfig(theta=3.0)
        detector, _ = build_detector(cfg)
        iv = interval_with(background_ratings())
        result = detector.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool))
        # Mean positive frequency is 2 -> threshold 6.
        assert result.thresholds.pos_frequency == pytest.approx(6.0)

    def test_empty_interval_all_ones(self):
        detector, _ = build_detector()
        result = detector.analyze(
            IntervalRatings(N), np.zeros(N), np.zeros((N, N), dtype=bool)
        )
        assert np.all(result.weights == 1.0)
        assert result.findings == ()


class TestBehaviourReasons:
    def _analyze(self, extra, reputations=None):
        detector, _ = build_detector()
        iv = interval_with(background_ratings() + extra)
        reps = reputations if reputations is not None else np.zeros(N)
        return detector.analyze(iv, reps, np.zeros((N, N), dtype=bool))

    def test_b2_high_closeness_low_reputed_ratee(self):
        result = self._analyze([(0, 1, 1.0, 40)])
        finding = next(f for f in result.findings if (f.rater, f.ratee) == (0, 1))
        assert finding.reasons & SuspicionReason.B2

    def test_b3_low_similarity(self):
        result = self._analyze([(0, 1, 1.0, 40)])
        finding = next(f for f in result.findings if (f.rater, f.ratee) == (0, 1))
        assert finding.reasons & SuspicionReason.B3

    def test_b2_not_triggered_for_reputable_ratee(self):
        reps = np.zeros(N)
        reps[1] = 0.5
        result = self._analyze([(0, 1, 1.0, 40)], reputations=reps)
        finding = next(f for f in result.findings if (f.rater, f.ratee) == (0, 1))
        assert not (finding.reasons & SuspicionReason.B2)
        assert finding.reasons & SuspicionReason.B3  # still dissimilar

    def test_b1_low_closeness_strangers(self):
        # 2 and 5 are not adjacent and share modest interactions -> low
        # closeness; flood positive ratings.
        result = self._analyze([(2, 5, 1.0, 40)])
        findings = {(f.rater, f.ratee): f for f in result.findings}
        if (2, 5) in findings:
            assert findings[(2, 5)].reasons & (
                SuspicionReason.B1 | SuspicionReason.B3
            )

    def test_b4_negative_flood_at_high_similarity(self):
        # 2 and 3 share declared interests and behaviour -> high similarity.
        result = self._analyze([(2, 3, -1.0, 40)])
        finding = next(f for f in result.findings if (f.rater, f.ratee) == (2, 3))
        assert finding.reasons & SuspicionReason.B4

    def test_normal_negative_rating_not_flagged(self):
        result = self._analyze([(2, 3, -1.0, 3)])
        assert (2, 3) not in {(f.rater, f.ratee) for f in result.findings}


class TestDamping:
    def test_flagged_pair_weight_below_one(self):
        detector, _ = build_detector()
        iv = interval_with(background_ratings() + [(0, 1, 1.0, 40)])
        result = detector.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool))
        assert result.weights[0, 1] < 1.0

    def test_unflagged_pairs_untouched(self):
        detector, _ = build_detector()
        iv = interval_with(background_ratings() + [(0, 1, 1.0, 40)])
        result = detector.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool))
        flagged = {(f.rater, f.ratee) for f in result.findings}
        for i in range(N):
            for j in range(N):
                if (i, j) not in flagged:
                    assert result.weights[i, j] == 1.0

    def test_colluder_pair_damped_strongly(self):
        """The outlier pair deviates far from the rater's leave-one-out band.

        In this tiny graph the partner still leaks into the band through
        common-friend paths, so a single interval only halves the weight;
        the integration tests cover the cumulative end-to-end collapse.
        """
        detector, _ = build_detector()
        iv = interval_with(background_ratings() + [(0, 1, 1.0, 40), (1, 0, 1.0, 40)])
        result = detector.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool))
        assert result.weights[0, 1] < 0.5

    def test_weights_in_unit_interval(self):
        detector, _ = build_detector()
        iv = interval_with(
            background_ratings() + [(0, 1, 1.0, 40), (2, 3, -1.0, 40)]
        )
        result = detector.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool))
        assert np.all(result.weights > 0.0)
        assert np.all(result.weights <= 1.0)

    def test_alpha_caps_weights(self):
        cfg = SocialTrustConfig(
            alpha=0.5,
            pos_frequency_threshold=10.0,
            closeness_low=0.05,
            closeness_high=0.5,
            similarity_low=0.1,
            similarity_high=0.8,
            low_reputation_threshold=0.01,
        )
        detector, _ = build_detector(cfg)
        iv = interval_with(background_ratings() + [(0, 1, 1.0, 40)])
        result = detector.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool))
        assert result.weights[0, 1] <= 0.5


class TestAblations:
    def test_closeness_only_skips_b3_b4(self):
        cfg = SocialTrustConfig(
            use_similarity=False,
            pos_frequency_threshold=10.0,
            neg_frequency_threshold=10.0,
            closeness_low=0.05,
            closeness_high=0.5,
            low_reputation_threshold=0.01,
        )
        detector, _ = build_detector(cfg)
        iv = interval_with(background_ratings() + [(2, 3, -1.0, 40)])
        result = detector.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool))
        assert not any(f.reasons & SuspicionReason.B4 for f in result.findings)

    def test_similarity_only_skips_b1_b2(self):
        cfg = SocialTrustConfig(
            use_closeness=False,
            pos_frequency_threshold=10.0,
            neg_frequency_threshold=10.0,
            similarity_low=0.1,
            similarity_high=0.8,
            low_reputation_threshold=0.01,
        )
        detector, _ = build_detector(cfg)
        iv = interval_with(background_ratings() + [(0, 1, 1.0, 40)])
        result = detector.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool))
        for f in result.findings:
            assert not (f.reasons & (SuspicionReason.B1 | SuspicionReason.B2))


class TestCentering:
    def test_global_center_mode(self):
        cfg = SocialTrustConfig(
            center=GaussianCenter.GLOBAL,
            pos_frequency_threshold=10.0,
            closeness_low=0.05,
            closeness_high=0.5,
            similarity_low=0.1,
            similarity_high=0.8,
            low_reputation_threshold=0.01,
        )
        detector, _ = build_detector(cfg)
        iv = interval_with(background_ratings() + [(0, 1, 1.0, 40)])
        result = detector.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool))
        assert result.weights[0, 1] < 1.0

    def test_derived_percentile_band_thresholds(self):
        cfg = SocialTrustConfig(pos_frequency_threshold=10.0)
        detector, _ = build_detector(cfg)
        iv = interval_with(background_ratings() + [(0, 1, 1.0, 40)])
        result = detector.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool))
        t = result.thresholds
        assert t.closeness_low <= t.closeness_high
        assert t.similarity_low <= t.similarity_high


class TestMismatch:
    def test_computer_size_mismatch(self):
        detector, cfg = build_detector()
        profiles = InterestProfiles(N + 1, 6)
        for i in range(N + 1):
            profiles.set_declared(i, {0})
        with pytest.raises(ValueError):
            CollusionDetector(
                detector._closeness,  # noqa: SLF001
                SimilarityComputer(profiles, cfg),
                cfg,
            )
