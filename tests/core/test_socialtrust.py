"""Tests for the SocialTrust wrapper."""

import numpy as np
import pytest

from repro.core import SocialTrust
from repro.reputation import EBayModel, EigenTrust
from repro.reputation.base import IntervalRatings, Rating
from repro.social import InteractionLedger, InterestProfiles
from repro.social.generators import paper_social_network
from repro.utils.rng import spawn_rng

N = 12
COLLUDERS = (0, 1)


def build(base=None, config=None):
    rng = spawn_rng(7, 0)
    network = paper_social_network(N, COLLUDERS, rng)
    interactions = InteractionLedger(N)
    profiles = InterestProfiles(N, 5)
    profiles.set_declared(0, {0})
    profiles.set_declared(1, {1})
    for i in range(2, N):
        profiles.set_declared(i, {2, 3, 4})
        profiles.record_request(i, 2, 2.0)
    base = base or EigenTrust(N, [2])
    st = SocialTrust(base, network, interactions, profiles, config)
    return st, base, interactions, profiles


def genuine_interval(interactions):
    """Each node rates its next four neighbours once (sparse background)."""
    iv = IntervalRatings(N)
    for i in range(N):
        for step in range(1, 5):
            j = (i + step) % N
            iv.add(Rating(i, j, 1.0))
            interactions.record(i, j)
    return iv


def collusion_interval(interactions, count=50):
    iv = genuine_interval(interactions)
    for a, b in [(0, 1), (1, 0)]:
        for _ in range(count):
            iv.add(Rating(a, b, 1.0))
        interactions.record(a, b, count)
    return iv


class TestWiring:
    def test_name_combines(self):
        st, base, _, _ = build()
        assert st.name == "EigenTrust+SocialTrust"

    def test_name_with_ebay(self):
        st, _, _, _ = build(base=EBayModel(N))
        assert st.name == "eBay+SocialTrust"

    def test_reputations_delegate_to_inner(self):
        st, base, _, _ = build()
        assert np.array_equal(st.reputations, base.reputations)

    def test_size_mismatch_rejected(self):
        rng = spawn_rng(7, 0)
        network = paper_social_network(N, COLLUDERS, rng)
        interactions = InteractionLedger(N)
        profiles = InterestProfiles(N, 5)
        for i in range(N):
            profiles.set_declared(i, {0})
        with pytest.raises(ValueError):
            SocialTrust(EigenTrust(N + 1, [0]), network, interactions, profiles)

    def test_last_detection_none_before_update(self):
        st, _, _, _ = build()
        assert st.last_detection is None


class TestUpdate:
    def test_clean_interval_passes_through(self):
        st, base, interactions, _ = build()
        reference = EigenTrust(N, [2])
        iv = genuine_interval(interactions)
        st.update(iv.copy())
        reference.update(iv)
        assert np.allclose(st.reputations, reference.reputations)
        assert st.last_detection.n_adjusted == 0

    def test_collusion_interval_adjusted(self):
        st, base, interactions, _ = build()
        reference = EigenTrust(N, [2])
        iv = collusion_interval(interactions)
        st.update(iv.copy())
        reference.update(iv)
        # The wrapped system saw damped colluder ratings.
        assert st.reputations[0] < reference.reputations[0]
        assert st.reputations[1] < reference.reputations[1]
        assert st.last_detection.n_adjusted > 0

    def test_rated_mask_accumulates(self):
        st, _, interactions, _ = build()
        st.update(genuine_interval(interactions))
        # Second interval has no ratings at all; bands still have history.
        st.update(IntervalRatings(N))
        assert st.last_detection.n_adjusted == 0

    def test_reset_clears_state(self):
        st, base, interactions, _ = build()
        st.update(collusion_interval(interactions))
        st.reset()
        assert st.last_detection is None
        assert np.all(base.local_trust == 0.0)

    def test_counts_preserved_through_scaling(self):
        st, _, interactions, _ = build()
        iv = collusion_interval(interactions)
        pos_before = iv.pos_counts.copy()
        st.update(iv)
        assert np.array_equal(iv.pos_counts, pos_before)


class TestRepeatedCollusion:
    def test_colluders_stay_suppressed_over_cycles(self):
        st, base, interactions, _ = build()
        reference = EigenTrust(N, [2])
        for _ in range(5):
            iv = collusion_interval(interactions)
            st.update(iv.copy())
            reference.update(iv)
        assert st.reputations[0] < 0.5 * reference.reputations[0]
