"""Audit-log parity: dense ``analyze`` vs ``analyze_sparse``.

Both detector passes emit one audit event per frequency-flagged pair.
The sparse pass evaluates only the flagged set (never an ``n x n``
array), so this pins that the *story told to the operator* — which pairs
were examined, which thresholds fired, which behaviour classes matched,
and what weight was applied — is the same regardless of backend.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.core.closeness import ClosenessComputer
from repro.core.config import SocialTrustConfig
from repro.core.detector import CollusionDetector
from repro.core.similarity import SimilarityComputer
from repro.core.sparse import SparseClosenessComputer, SparseSimilarityComputer
from repro.obs import Observability
from repro.reputation.base import IntervalRatings
from repro.social.generators import paper_social_network
from repro.social.interactions import InteractionLedger
from repro.social.interests import InterestProfiles
from repro.utils.rng import spawn_rng

N = 16
N_INTERESTS = 6


def make_world(seed=11):
    rng = spawn_rng(seed, 0)
    network = paper_social_network(N, (1, 2, 3), rng)
    ledger = InteractionLedger(N)
    profiles = InterestProfiles(N, N_INTERESTS)
    for node in range(N):
        k = int(rng.integers(1, 4))
        profiles.set_declared(
            node, [int(v) for v in rng.choice(N_INTERESTS, size=k, replace=False)]
        )
    for _ in range(3 * N):
        i, j = int(rng.integers(0, N)), int(rng.integers(0, N))
        if i != j:
            ledger.record(i, j, float(rng.integers(1, 4)))
            profiles.record_request(i, int(rng.integers(0, N_INTERESTS)))
    return network, ledger, profiles, rng


def make_interval(rng):
    interval = IntervalRatings(N)
    for _ in range(4 * N):
        i, j = int(rng.integers(0, N)), int(rng.integers(0, N))
        if i != j:
            interval.pos_counts[i, j] += 1
            interval.value_sum[i, j] += 1.0
    interval.pos_counts[0, 1] += 12
    interval.value_sum[0, 1] += 12.0
    interval.neg_counts[2, 3] += 9
    interval.value_sum[2, 3] -= 9.0
    return interval


def audit_by_pair(obs):
    events = {}
    for event in obs.audit.to_events():
        assert event["type"] == "audit"
        events[(event["rater"], event["ratee"])] = event
    return events


class TestAuditParity:
    def run_both(self):
        network, ledger, profiles, rng = make_world()
        interval = make_interval(rng)
        reputations = np.full(N, 1.0 / N)
        rated = interval.counts > 0
        flag_counts = np.zeros((N, N))
        flag_counts[0, 1] = 2.0

        sparse_cfg = SocialTrustConfig(coefficient_backend="sparse")
        dense_cfg = SocialTrustConfig(
            **{**sparse_cfg.to_dict(), "coefficient_backend": "dense"}
        )

        dense_obs = Observability(tracing=False)
        dense_det = CollusionDetector(
            ClosenessComputer(network, ledger, dense_cfg),
            SimilarityComputer(profiles, dense_cfg),
            dense_cfg,
            observability=dense_obs,
        )
        dense_det.analyze(interval, reputations, rated, flag_counts)

        sparse_obs = Observability(tracing=False)
        sparse_det = CollusionDetector(
            SparseClosenessComputer(network, ledger, sparse_cfg),
            SparseSimilarityComputer(profiles, sparse_cfg),
            sparse_cfg,
            observability=sparse_obs,
        )
        sparse_det.analyze_sparse(
            sparse.csr_matrix(interval.pos_counts),
            sparse.csr_matrix(interval.neg_counts),
            reputations,
            sparse.csr_matrix(rated),
            sparse.csr_matrix(flag_counts),
        )
        return dense_obs, sparse_obs

    def test_same_examined_pair_set(self):
        dense_obs, sparse_obs = self.run_both()
        dense_events, sparse_events = audit_by_pair(dense_obs), audit_by_pair(sparse_obs)
        assert dense_events, "scenario must flag pairs"
        assert set(dense_events) == set(sparse_events)

    def test_events_agree_field_by_field(self):
        dense_obs, sparse_obs = self.run_both()
        dense_events, sparse_events = audit_by_pair(dense_obs), audit_by_pair(sparse_obs)
        damped = 0
        for pair, want in dense_events.items():
            got = sparse_events[pair]
            assert got["decision"] == want["decision"], pair
            assert got["behaviors"] == want["behaviors"], pair
            assert got["fired"] == want["fired"], pair
            assert got["pos_count"] == want["pos_count"], pair
            assert got["neg_count"] == want["neg_count"], pair
            assert got["closeness"] == pytest.approx(
                want["closeness"], rel=1e-9, abs=1e-12
            )
            assert got["similarity"] == pytest.approx(
                want["similarity"], rel=1e-9, abs=1e-12
            )
            assert got["weight"] == pytest.approx(want["weight"], rel=1e-9, abs=1e-12)
            for name, value in want["thresholds"].items():
                assert got["thresholds"][name] == pytest.approx(
                    value, rel=1e-9, abs=1e-12
                ), (pair, name)
            if want["decision"] == "damped":
                damped += 1
        assert damped > 0, "parity must cover actually-damped events"

    def test_metrics_counters_agree(self):
        # The registry roll-ups both passes publish must match too.
        dense_obs, sparse_obs = self.run_both()
        for name in ("detector.pairs_examined", "detector.pairs_damped"):
            if name in dense_obs.metrics or name in sparse_obs.metrics:
                assert name in dense_obs.metrics and name in sparse_obs.metrics
                assert (
                    dense_obs.metrics[name].value == sparse_obs.metrics[name].value
                ), name
