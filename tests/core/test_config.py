"""Tests for SocialTrustConfig validation."""

import pytest

from repro.core.config import (
    CommonFriendAggregate,
    GaussianCenter,
    SocialTrustConfig,
)


class TestDefaults:
    def test_paper_defaults(self):
        cfg = SocialTrustConfig()
        assert cfg.alpha == 1.0
        assert cfg.theta == 2.0
        assert cfg.hardened is True
        assert cfg.center is GaussianCenter.AUTO
        assert cfg.common_friend_aggregate is CommonFriendAggregate.MEAN
        assert cfg.use_closeness and cfg.use_similarity

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SocialTrustConfig().alpha = 2.0  # type: ignore[misc]


class TestValidation:
    def test_rejects_non_positive_alpha(self):
        with pytest.raises(ValueError):
            SocialTrustConfig(alpha=0.0)

    def test_rejects_theta_below_one(self):
        with pytest.raises(ValueError):
            SocialTrustConfig(theta=1.0)

    def test_rejects_negative_frequency_threshold(self):
        with pytest.raises(ValueError):
            SocialTrustConfig(pos_frequency_threshold=-1.0)

    def test_rejects_bad_reputation_threshold(self):
        with pytest.raises(ValueError):
            SocialTrustConfig(low_reputation_threshold=1.5)

    def test_rejects_inverted_closeness_band(self):
        with pytest.raises(ValueError):
            SocialTrustConfig(closeness_low=0.9, closeness_high=0.1)

    def test_rejects_inverted_similarity_band(self):
        with pytest.raises(ValueError):
            SocialTrustConfig(similarity_low=0.9, similarity_high=0.1)

    def test_rejects_lambda_outside_half_one(self):
        with pytest.raises(ValueError):
            SocialTrustConfig(lambda_scaling=0.4)
        with pytest.raises(ValueError):
            SocialTrustConfig(lambda_scaling=1.1)

    def test_rejects_zero_band_size(self):
        with pytest.raises(ValueError):
            SocialTrustConfig(min_band_size=0)

    def test_rejects_both_dimensions_disabled(self):
        with pytest.raises(ValueError):
            SocialTrustConfig(use_closeness=False, use_similarity=False)

    def test_single_dimension_allowed(self):
        assert SocialTrustConfig(use_closeness=False).use_similarity

    def test_rejects_bad_spread_floor(self):
        with pytest.raises(ValueError):
            SocialTrustConfig(spread_floor=0.0)

    def test_explicit_thresholds_accepted(self):
        cfg = SocialTrustConfig(
            pos_frequency_threshold=5.0,
            neg_frequency_threshold=3.0,
            closeness_low=0.1,
            closeness_high=0.8,
            similarity_low=0.2,
            similarity_high=0.7,
            low_reputation_threshold=0.01,
        )
        assert cfg.pos_frequency_threshold == 5.0
