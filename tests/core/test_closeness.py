"""Tests for the social-closeness computation (Eqs. (2)-(4), (10))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closeness import ClosenessComputer
from repro.core.config import CommonFriendAggregate, SocialTrustConfig
from repro.social.graph import Relationship, SocialGraph
from repro.social.interactions import InteractionLedger
from repro.utils.rng import spawn_rng


def plain_config(**kw):
    return SocialTrustConfig(hardened=False, **kw)


@pytest.fixture
def triangle():
    """0-1 adjacent, 0-2 adjacent, 1-2 non-adjacent (common friend 0)."""
    g = SocialGraph(4)
    g.add_friendship(0, 1, [Relationship(), Relationship()])  # m=2
    g.add_friendship(0, 2)  # m=1
    ledger = InteractionLedger(4)
    ledger.record(0, 1, 3.0)
    ledger.record(0, 2, 1.0)
    ledger.record(1, 0, 2.0)
    ledger.record(2, 0, 4.0)
    return g, ledger


class TestAdjacentCloseness:
    def test_eq2(self, triangle):
        g, ledger = triangle
        cc = ClosenessComputer(g, ledger, plain_config())
        # m(0,1)=2, f(0,1)=3, total_out(0)=4 -> 2 * 3/4
        assert cc.adjacent(0, 1) == pytest.approx(2 * 0.75)

    def test_directionality(self, triangle):
        g, ledger = triangle
        cc = ClosenessComputer(g, ledger, plain_config())
        # m(1,0)=2, f(1,0)=2, total_out(1)=2 -> 2 * 1.0
        assert cc.adjacent(1, 0) == pytest.approx(2.0)

    def test_zero_interactions_zero(self):
        g = SocialGraph(3)
        g.add_friendship(0, 1)
        cc = ClosenessComputer(g, InteractionLedger(3), plain_config())
        assert cc.adjacent(0, 1) == 0.0

    def test_hardened_uses_weighted_factor(self, triangle):
        g, ledger = triangle
        cc = ClosenessComputer(
            g, ledger, SocialTrustConfig(hardened=True, lambda_scaling=0.5)
        )
        # factor = 1 + 0.5 = 1.5 instead of m = 2
        assert cc.adjacent(0, 1) == pytest.approx(1.5 * 0.75)


class TestCommonFriendCloseness:
    def test_eq3_mean(self, triangle):
        g, ledger = triangle
        cc = ClosenessComputer(g, ledger, plain_config())
        expected = (cc.adjacent(1, 0) + cc.adjacent(0, 2)) / 2.0
        assert cc.closeness(1, 2) == pytest.approx(expected)

    def test_eq3_sum_option(self):
        g = SocialGraph(5)
        # 1 and 2 share common friends 0 and 3.
        for hub in (0, 3):
            g.add_friendship(1, hub)
            g.add_friendship(2, hub)
        ledger = InteractionLedger(5)
        for i, j in [(1, 0), (0, 2), (1, 3), (3, 2)]:
            ledger.record(i, j, 1.0)
        mean_cc = ClosenessComputer(
            g, ledger, plain_config(common_friend_aggregate=CommonFriendAggregate.MEAN)
        )
        sum_cc = ClosenessComputer(
            g, ledger, plain_config(common_friend_aggregate=CommonFriendAggregate.SUM)
        )
        assert sum_cc.closeness(1, 2) == pytest.approx(2 * mean_cc.closeness(1, 2))

    def test_self_closeness_rejected(self, triangle):
        g, ledger = triangle
        cc = ClosenessComputer(g, ledger, plain_config())
        with pytest.raises(ValueError):
            cc.closeness(1, 1)


class TestPathFallback:
    def test_min_over_path(self):
        """Chain 0-1-2-3: closeness(0,3) = min of adjacent closenesses."""
        g = SocialGraph(4)
        for i in range(3):
            g.add_friendship(i, i + 1)
        ledger = InteractionLedger(4)
        ledger.record(0, 1, 1.0)
        ledger.record(1, 2, 1.0)
        ledger.record(2, 3, 1.0)
        # Make 1->2 the weak link by diluting 1's attention.
        ledger.record(1, 0, 9.0)
        cc = ClosenessComputer(g, ledger, plain_config())
        legs = [cc.adjacent(0, 1), cc.adjacent(1, 2), cc.adjacent(2, 3)]
        assert cc.closeness(0, 3) == pytest.approx(min(legs))

    def test_disconnected_zero(self):
        g = SocialGraph(4)
        g.add_friendship(0, 1)
        cc = ClosenessComputer(g, InteractionLedger(4), plain_config())
        assert cc.closeness(0, 3) == 0.0


class TestClosenessMatrix:
    def _random_world(self, seed, n=14, density=0.25):
        rng = spawn_rng(seed, 0)
        g = SocialGraph(n)
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < density:
                    count = int(rng.integers(1, 4))
                    g.add_friendship(i, j, [Relationship()] * count)
        ledger = InteractionLedger(n)
        for i in range(n):
            for j in range(n):
                if i != j and rng.random() < 0.5:
                    ledger.record(i, j, float(rng.integers(1, 8)))
        return g, ledger

    @pytest.mark.parametrize("hardened", [False, True])
    @pytest.mark.parametrize("aggregate", list(CommonFriendAggregate))
    def test_matrix_matches_scalar(self, hardened, aggregate):
        g, ledger = self._random_world(7)
        cfg = SocialTrustConfig(hardened=hardened, common_friend_aggregate=aggregate)
        cc = ClosenessComputer(g, ledger, cfg)
        matrix = cc.closeness_matrix()
        n = g.n_nodes
        for i in range(n):
            for j in range(n):
                if i == j:
                    assert matrix[i, j] == 0.0
                    continue
                expected = cc.closeness(i, j)
                # The matrix path walks min-over-path pairs identically only
                # when a unique shortest path exists; both paths agree on
                # adjacency/common-friend pairs exactly.
                if g.are_adjacent(i, j) or (g.friends(i) & g.friends(j)):
                    assert matrix[i, j] == pytest.approx(expected), (i, j)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_matrix_non_negative(self, seed):
        g, ledger = self._random_world(seed)
        cc = ClosenessComputer(g, ledger, plain_config())
        assert np.all(cc.closeness_matrix() >= 0.0)

    def test_cache_invalidation(self):
        g = SocialGraph(3)
        g.add_friendship(0, 1)
        ledger = InteractionLedger(3)
        ledger.record(0, 1, 1.0)
        cc = ClosenessComputer(g, ledger, plain_config())
        before = cc.closeness_matrix()[0, 1]
        g.add_friendship(0, 1, [Relationship()])  # now m=2
        stale = cc.closeness_matrix()[0, 1]
        assert stale == pytest.approx(before)  # cached structure
        cc.invalidate_cache()
        assert cc.closeness_matrix()[0, 1] == pytest.approx(2 * before)


class TestBands:
    def test_rater_band(self, triangle):
        g, ledger = triangle
        cc = ClosenessComputer(g, ledger, plain_config())
        band = cc.rater_band(0, {1, 2})
        values = [cc.closeness(0, 1), cc.closeness(0, 2)]
        assert band.center == pytest.approx(np.mean(values))
        assert band.spread == pytest.approx(max(values) - min(values))
        assert band.size == 2

    def test_rater_band_empty(self, triangle):
        g, ledger = triangle
        cc = ClosenessComputer(g, ledger, plain_config())
        assert cc.rater_band(0, set()) is None

    def test_global_band(self, triangle):
        g, ledger = triangle
        cc = ClosenessComputer(g, ledger, plain_config())
        band = cc.global_band([(0, 1), (1, 0)])
        assert band is not None and band.size == 2


class TestSizeMismatch:
    def test_rejected(self):
        g = SocialGraph(3)
        with pytest.raises(ValueError):
            ClosenessComputer(g, InteractionLedger(4))
