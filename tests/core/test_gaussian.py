"""Tests for the Gaussian reputation filter (Eqs. (5), (6), (8), (9))."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.gaussian import RaterBand, combined_weight, gaussian_weight


class TestRaterBand:
    def test_from_values(self):
        band = RaterBand.from_values([0.1, 0.5, 0.3])
        assert band.center == pytest.approx(0.3)
        assert band.spread == pytest.approx(0.4)
        assert band.size == 3

    def test_single_value_zero_spread(self):
        band = RaterBand.from_values([0.7])
        assert band.spread == 0.0
        assert band.size == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RaterBand.from_values([])


class TestGaussianWeight:
    def test_peak_at_center(self):
        band = RaterBand(center=0.5, spread=0.2, size=5)
        assert gaussian_weight(0.5, band) == pytest.approx(1.0)

    def test_alpha_scales_peak(self):
        band = RaterBand(center=0.5, spread=0.2, size=5)
        assert gaussian_weight(0.5, band, alpha=0.7) == pytest.approx(0.7)

    def test_symmetry(self):
        band = RaterBand(center=0.5, spread=0.2, size=5)
        assert gaussian_weight(0.3, band) == pytest.approx(gaussian_weight(0.7, band))

    def test_monotone_decay(self):
        band = RaterBand(center=0.0, spread=1.0, size=5)
        values = [gaussian_weight(x, band) for x in (0.0, 0.5, 1.0, 2.0, 4.0)]
        assert values == sorted(values, reverse=True)

    def test_exact_formula(self):
        band = RaterBand(center=0.2, spread=0.5, size=5)
        expected = math.exp(-((0.9 - 0.2) ** 2) / (2 * 0.5**2))
        assert gaussian_weight(0.9, band) == pytest.approx(expected)

    def test_spread_floor_applied(self):
        band = RaterBand(center=0.5, spread=0.0, size=1)
        # Without the floor this would be exp(-inf) = 0.
        w = gaussian_weight(0.51, band, spread_floor=0.1)
        assert w == pytest.approx(math.exp(-(0.01**2) / (2 * 0.01)))

    @given(
        x=st.floats(-5, 5),
        center=st.floats(-5, 5),
        spread=st.floats(0, 3),
    )
    def test_bounded_by_alpha(self, x, center, spread):
        band = RaterBand(center=center, spread=spread, size=3)
        w = gaussian_weight(x, band, alpha=1.0)
        assert 0.0 <= w <= 1.0


class TestCombinedWeight:
    def test_two_dimensions_multiply_exponents(self):
        bc = RaterBand(center=0.0, spread=1.0, size=5)
        bs = RaterBand(center=0.0, spread=1.0, size=5)
        w = combined_weight(1.0, bc, 1.0, bs)
        single = gaussian_weight(1.0, bc)
        assert w == pytest.approx(single * single)

    def test_degenerates_to_one_dimension(self):
        bc = RaterBand(center=0.2, spread=0.3, size=5)
        assert combined_weight(0.9, bc, None, None) == pytest.approx(
            gaussian_weight(0.9, bc)
        )
        assert combined_weight(None, None, 0.9, bc) == pytest.approx(
            gaussian_weight(0.9, bc)
        )

    def test_rejects_no_dimensions(self):
        with pytest.raises(ValueError):
            combined_weight(None, None, None, None)

    def test_extreme_deviation_near_zero(self):
        """The Fig. 6 corners: extreme (closeness, similarity) combos are
        damped to nearly nothing."""
        bc = RaterBand(center=0.3, spread=0.1, size=5)
        bs = RaterBand(center=0.4, spread=0.1, size=5)
        assert combined_weight(3.0, bc, 0.0, bs) < 1e-10

    @given(
        xc=st.floats(-3, 3),
        xs=st.floats(-3, 3),
        alpha=st.floats(0.1, 1.0),
    )
    def test_bounded(self, xc, xs, alpha):
        bc = RaterBand(center=0.0, spread=0.5, size=4)
        bs = RaterBand(center=0.0, spread=0.5, size=4)
        w = combined_weight(xc, bc, xs, bs, alpha=alpha)
        assert 0.0 <= w <= alpha

    def test_combined_never_exceeds_single_dimension(self):
        bc = RaterBand(center=0.0, spread=0.5, size=4)
        bs = RaterBand(center=0.0, spread=0.5, size=4)
        combined = combined_weight(0.8, bc, 0.8, bs)
        assert combined <= gaussian_weight(0.8, bc) + 1e-12
