"""Incremental Ωc/Ωs cache correctness.

:meth:`ClosenessComputer.closeness_matrix` and
:meth:`SimilarityComputer.similarity_matrix` cache their results against
the backing stores' mutation versions and patch only dirty rows on small
updates.  The contract tested here: after **any** mutation sequence
(targeted rating bursts, churn decay, bulk traffic, declared-profile
edits) the cached matrix must match a freshly built computer to 1e-12 —
and the band summaries must read from the very same matrix, so they can
never silently diverge after ``decay_nodes`` (the pre-facade bug).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closeness import ClosenessComputer
from repro.core.config import SocialTrustConfig
from repro.core.similarity import SimilarityComputer
from repro.social.generators import paper_social_network
from repro.social.interactions import InteractionLedger
from repro.social.interests import InterestProfiles
from repro.utils.rng import spawn_rng

N = 16
N_INTERESTS = 6


def make_world(seed=0):
    rng = spawn_rng(seed, 0)
    network = paper_social_network(N, (1, 2, 3), rng)
    ledger = InteractionLedger(N)
    profiles = InterestProfiles(N, N_INTERESTS)
    for node in range(N):
        k = int(rng.integers(1, 4))
        profiles.set_declared(
            node, [int(v) for v in rng.choice(N_INTERESTS, size=k, replace=False)]
        )
    return network, ledger, profiles, rng


def fresh_closeness(network, ledger, config):
    """An uncached computer over the same stores (the reference answer)."""
    return ClosenessComputer(network, ledger, config).closeness_matrix()


def fresh_similarity(profiles, config):
    return SimilarityComputer(profiles, config).similarity_matrix()


#: One mutation step: (kind, payload) applied to (ledger, profiles, rng).
def apply_step(step, ledger, profiles, rng):
    kind = step
    if kind == "burst":
        # A targeted burst dirties a handful of rater rows.
        for _ in range(3):
            i, j = rng.integers(0, N), rng.integers(0, N)
            if i != j:
                ledger.record(int(i), int(j))
                profiles.record_request(int(i), int(rng.integers(0, N_INTERESTS)))
    elif kind == "bulk":
        # Interval-scale traffic dirties most rows (full-rebuild path).
        raters, ratees = [], []
        for _ in range(2 * N):
            i, j = int(rng.integers(0, N)), int(rng.integers(0, N))
            if i != j:
                raters.append(i)
                ratees.append(j)
        ledger.record_many(np.array(raters), np.array(ratees))
        profiles.record_requests(
            np.array(raters), rng.integers(0, N_INTERESTS, size=len(raters))
        )
    elif kind == "decay":
        nodes = np.unique(rng.integers(0, N, size=3))
        ledger.decay_nodes(nodes, 0.5)
    elif kind == "declare":
        node = int(rng.integers(0, N))
        profiles.set_declared(node, [int(rng.integers(0, N_INTERESTS))])


STEP = st.sampled_from(["burst", "bulk", "decay", "declare"])


class TestClosenessCache:
    @settings(max_examples=25, deadline=None)
    @given(steps=st.lists(STEP, min_size=1, max_size=6), seed=st.integers(0, 50))
    def test_matches_fresh_computer_after_any_mutations(self, steps, seed):
        network, ledger, profiles, rng = make_world(seed)
        config = SocialTrustConfig()
        cached = ClosenessComputer(network, ledger, config)
        cached.closeness_matrix()  # prime the cache
        for step in steps:
            apply_step(step, ledger, profiles, rng)
            got = cached.closeness_matrix()
            want = fresh_closeness(network, ledger, config)
            np.testing.assert_allclose(got, want, atol=1e-12, rtol=0.0)

    def test_cache_hit_returns_same_object(self):
        network, ledger, profiles, rng = make_world()
        apply_step("bulk", ledger, profiles, rng)
        cc = ClosenessComputer(network, ledger, SocialTrustConfig())
        first = cc.closeness_matrix()
        assert cc.closeness_matrix() is first

    def test_returned_matrix_is_read_only(self):
        network, ledger, profiles, rng = make_world()
        cc = ClosenessComputer(network, ledger, SocialTrustConfig())
        matrix = cc.closeness_matrix()
        with pytest.raises(ValueError):
            matrix[0, 1] = 99.0

    def test_bands_follow_decay(self):
        """The satellite bugfix: bands must see ``decay_nodes`` aging."""
        network, ledger, profiles, rng = make_world()
        apply_step("bulk", ledger, profiles, rng)
        cc = ClosenessComputer(network, ledger, SocialTrustConfig())
        rated = frozenset(range(1, N))
        before = cc.rater_band(0, rated)
        ledger.decay_nodes(np.arange(N), 0.25)
        after = cc.rater_band(0, rated)
        matrix = cc.closeness_matrix()
        values = [float(matrix[0, j]) for j in rated]
        assert after.center == pytest.approx(sum(values) / len(values))
        assert after.spread == pytest.approx(abs(max(values) - min(values)))
        # Uniform column decay reshapes shares, so the band genuinely moved.
        assert before is not None and after is not None

    def test_global_band_reads_cached_matrix(self):
        network, ledger, profiles, rng = make_world()
        apply_step("bulk", ledger, profiles, rng)
        cc = ClosenessComputer(network, ledger, SocialTrustConfig())
        pairs = [(0, 1), (2, 3), (1, 4)]
        band = cc.global_band(pairs)
        matrix = cc.closeness_matrix()
        values = [float(matrix[i, j]) for i, j in pairs]
        assert band.center == pytest.approx(sum(values) / len(values))


class TestRestoreStateShapeChecks:
    """Satellite: a checkpoint from a different network size must be
    rejected with a clear error, not silently installed as a poisoned
    cache that every later incremental patch builds on."""

    def test_closeness_rejects_wrong_shape(self):
        network, ledger, profiles, rng = make_world()
        apply_step("bulk", ledger, profiles, rng)
        cc = ClosenessComputer(network, ledger, SocialTrustConfig())
        cc.closeness_matrix()
        bad = cc.state_dict()
        bad["t2"] = np.zeros((N + 1, N + 1))
        with pytest.raises(ValueError, match="different network size"):
            cc.restore_state(bad)

    def test_similarity_rejects_wrong_shape(self):
        network, ledger, profiles, rng = make_world()
        sc = SimilarityComputer(profiles, SocialTrustConfig())
        sc.similarity_matrix()
        bad = sc.state_dict()
        bad["matrix"] = np.zeros((N - 2, N - 2))
        with pytest.raises(ValueError, match="different network size"):
            sc.restore_state(bad)

    def test_roundtrip_still_bit_identical(self):
        network, ledger, profiles, rng = make_world()
        apply_step("bulk", ledger, profiles, rng)
        cc = ClosenessComputer(network, ledger, SocialTrustConfig())
        before = cc.closeness_matrix().copy()
        other = ClosenessComputer(network, ledger, SocialTrustConfig())
        other.restore_state(cc.state_dict())
        np.testing.assert_array_equal(other.closeness_matrix(), before)


class TestSimilarityCache:
    @settings(max_examples=25, deadline=None)
    @given(
        steps=st.lists(STEP, min_size=1, max_size=6),
        seed=st.integers(0, 50),
        hardened=st.booleans(),
    )
    def test_matches_fresh_computer_after_any_mutations(
        self, steps, seed, hardened
    ):
        network, ledger, profiles, rng = make_world(seed)
        config = SocialTrustConfig(hardened=hardened)
        cached = SimilarityComputer(profiles, config)
        cached.similarity_matrix()  # prime the cache
        for step in steps:
            apply_step(step, ledger, profiles, rng)
            got = cached.similarity_matrix()
            want = fresh_similarity(profiles, config)
            np.testing.assert_allclose(got, want, atol=1e-12, rtol=0.0)

    def test_plain_mode_survives_request_traffic(self):
        """Plain Ωs only depends on declared sets: traffic keeps the hit."""
        network, ledger, profiles, rng = make_world()
        sc = SimilarityComputer(profiles, SocialTrustConfig(hardened=False))
        first = sc.similarity_matrix()
        apply_step("bulk", ledger, profiles, rng)
        assert sc.similarity_matrix() is first

    def test_declared_change_invalidates(self):
        network, ledger, profiles, rng = make_world()
        for hardened in (False, True):
            sc = SimilarityComputer(profiles, SocialTrustConfig(hardened=hardened))
            first = sc.similarity_matrix()
            profiles.set_declared(0, [0])
            assert sc.similarity_matrix() is not first

    def test_returned_matrix_is_read_only(self):
        network, ledger, profiles, rng = make_world()
        sc = SimilarityComputer(profiles, SocialTrustConfig())
        with pytest.raises(ValueError):
            sc.similarity_matrix()[0, 1] = 99.0

    def test_bands_read_cached_matrix(self):
        network, ledger, profiles, rng = make_world()
        apply_step("bulk", ledger, profiles, rng)
        sc = SimilarityComputer(profiles, SocialTrustConfig())
        band = sc.rater_band(0, frozenset(range(1, 5)))
        matrix = sc.similarity_matrix()
        values = [float(matrix[0, j]) for j in range(1, 5)]
        assert band.center == pytest.approx(sum(values) / len(values))
