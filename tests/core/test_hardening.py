"""Tests for the frequency cap and recidivism escalation.

These two mechanisms close the gaps Eq. (9) leaves when a colluding
pair's coefficients *look* normal (distance-2 cliques, falsified
profiles): flagged pairs contribute at most a normal-frequency pair's
rating mass per interval, and repeat offenders are damped geometrically.
"""

import numpy as np
import pytest

from repro.core import SocialTrust, SocialTrustConfig
from repro.core.closeness import ClosenessComputer
from repro.core.detector import CollusionDetector
from repro.core.similarity import SimilarityComputer
from repro.reputation import EigenTrust
from repro.reputation.base import IntervalRatings, Rating
from repro.social.graph import Relationship, SocialGraph
from repro.social.interactions import InteractionLedger
from repro.social.interests import InterestProfiles

N = 8


def make_detector(**config_kw):
    config = SocialTrustConfig(
        pos_frequency_threshold=10.0,
        neg_frequency_threshold=10.0,
        closeness_low=0.05,
        closeness_high=0.5,
        similarity_low=0.1,
        similarity_high=0.3,
        low_reputation_threshold=0.01,
        **config_kw,
    )
    g = SocialGraph(N)
    g.add_friendship(0, 1, [Relationship()] * 4)
    ledger = InteractionLedger(N)
    ledger.record(0, 1, 50.0)
    for i in range(N):
        for j in range(N):
            if i != j and (i, j) != (0, 1):
                ledger.record(i, j, 1.0)
    profiles = InterestProfiles(N, 6)
    profiles.set_declared(0, {0})
    profiles.set_declared(1, {1})
    for i in range(2, N):
        profiles.set_declared(i, {2, 3})
        profiles.record_request(i, 2, 2.0)
    return (
        CollusionDetector(
            ClosenessComputer(g, ledger, config),
            SimilarityComputer(profiles, config),
            config,
        ),
        config,
    )


def flood_interval(count=40):
    iv = IntervalRatings(N)
    for i in range(N):
        for j in range(N):
            if i != j:
                iv.pos_counts[i, j] = 2
                iv.value_sum[i, j] = 2
    iv.pos_counts[0, 1] += count
    iv.value_sum[0, 1] += count
    return iv


def make_uniform_detector(**config_kw):
    """A world where the Gaussian is neutral: every pair has identical
    (zero) closeness, so only the frequency cap differentiates weights.
    B1 fires for any frequency-flagged pair via the explicit high T_cl."""
    config = SocialTrustConfig(
        pos_frequency_threshold=10.0,
        neg_frequency_threshold=10.0,
        closeness_low=0.5,
        closeness_high=0.9,
        low_reputation_threshold=0.01,
        use_similarity=False,
        **config_kw,
    )
    g = SocialGraph(N)  # no edges: closeness 0 everywhere
    ledger = InteractionLedger(N)
    profiles = InterestProfiles(N, 6)
    for i in range(N):
        profiles.set_declared(i, {0})
    return (
        CollusionDetector(
            ClosenessComputer(g, ledger, config),
            SimilarityComputer(profiles, config),
            config,
        ),
        config,
    )


class TestFrequencyCap:
    def test_cap_bounds_weight_by_frequency_ratio(self):
        detector, config = make_uniform_detector()
        iv = flood_interval(count=100)
        result = detector.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool))
        # pos_counts[0, 1] = 102, threshold 10 -> cap <= 10/102; the
        # neutral Gaussian contributes weight 1.
        assert result.weights[0, 1] == pytest.approx(10.0 / 102.0)

    def test_cap_scales_with_excess(self):
        detector, _ = make_uniform_detector()
        mild = detector.analyze(
            flood_interval(count=20), np.zeros(N), np.zeros((N, N), dtype=bool)
        )
        heavy = detector.analyze(
            flood_interval(count=200), np.zeros(N), np.zeros((N, N), dtype=bool)
        )
        assert heavy.weights[0, 1] < mild.weights[0, 1]

    def test_cap_disabled(self):
        uncapped, _ = make_uniform_detector(cap_flagged_frequency=False)
        iv = flood_interval(count=200)
        w = uncapped.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool)).weights[
            0, 1
        ]
        # Without the cap the neutral Gaussian leaves the weight at ~1.
        assert w == pytest.approx(1.0)

    def test_unflagged_pairs_not_capped(self):
        detector, _ = make_uniform_detector()
        result = detector.analyze(
            flood_interval(), np.zeros(N), np.zeros((N, N), dtype=bool)
        )
        assert result.weights[2, 3] == 1.0


class TestRecidivism:
    def test_flag_history_escalates(self):
        detector, _ = make_detector()
        iv = flood_interval()
        no_history = detector.analyze(
            iv, np.zeros(N), np.zeros((N, N), dtype=bool)
        ).weights[0, 1]
        history = np.zeros((N, N), dtype=np.int64)
        history[0, 1] = 3
        with_history = detector.analyze(
            iv, np.zeros(N), np.zeros((N, N), dtype=bool), history
        ).weights[0, 1]
        assert with_history == pytest.approx(no_history * 0.5**3)

    def test_decay_one_disables(self):
        detector, _ = make_detector(recidivism_decay=1.0)
        iv = flood_interval()
        history = np.zeros((N, N), dtype=np.int64)
        history[0, 1] = 5
        a = detector.analyze(iv, np.zeros(N), np.zeros((N, N), dtype=bool)).weights[0, 1]
        b = detector.analyze(
            iv, np.zeros(N), np.zeros((N, N), dtype=bool), history
        ).weights[0, 1]
        assert a == pytest.approx(b)

    def test_config_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            SocialTrustConfig(recidivism_decay=0.0)
        with pytest.raises(ValueError):
            SocialTrustConfig(recidivism_decay=1.5)


class TestWrapperFlagTracking:
    def _build(self):
        from repro.social.generators import paper_social_network
        from repro.utils.rng import spawn_rng

        rng = spawn_rng(5, 0)
        network = paper_social_network(N, (0, 1), rng)
        interactions = InteractionLedger(N)
        profiles = InterestProfiles(N, 6)
        profiles.set_declared(0, {0})
        profiles.set_declared(1, {1})
        for i in range(2, N):
            profiles.set_declared(i, {2, 3})
            profiles.record_request(i, 2, 2.0)
        st = SocialTrust(EigenTrust(N, [2]), network, interactions, profiles)
        return st, interactions

    def _interval(self, interactions):
        iv = IntervalRatings(N)
        for i in range(N):
            for step in (1, 2, 3):
                j = (i + step) % N
                iv.add(Rating(i, j, 1.0))
                interactions.record(i, j)
        for _ in range(50):
            iv.add(Rating(0, 1, 1.0))
            iv.add(Rating(1, 0, 1.0))
        interactions.record(0, 1, 50)
        interactions.record(1, 0, 50)
        return iv

    def test_flag_counts_accumulate(self):
        st, interactions = self._build()
        for expected in (1, 2, 3):
            st.update(self._interval(interactions))
            assert st.flag_counts[0, 1] == expected

    def test_repeat_offender_weight_shrinks(self):
        st, interactions = self._build()
        weights = []
        for _ in range(4):
            st.update(self._interval(interactions))
            weights.append(st.last_detection.weights[0, 1])
        assert weights[-1] < weights[0]

    def test_reset_clears_flags(self):
        st, interactions = self._build()
        st.update(self._interval(interactions))
        st.reset()
        assert st.flag_counts.sum() == 0

    def test_flag_counts_read_only(self):
        st, _ = self._build()
        with pytest.raises(ValueError):
            st.flag_counts[0, 1] = 7
