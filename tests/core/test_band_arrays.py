"""Leave-one-out band edge cases in :func:`repro.core.detector._band_arrays`.

The vectorised band computation removes the judged pair from its rater's
band via sorted-row extrema and ±inf sentinels.  The constructions that
historically go wrong are pinned here directly against a brute-force
per-pair reference: a rater with a single rated peer (the sentinel rows),
duplicate row maxima (the runner-up must equal the maximum), and the
RATER / AUTO / GLOBAL centring policies at the ``min_band_size`` edge.
"""

import numpy as np
import pytest

from repro.core.config import GaussianCenter, SocialTrustConfig
from repro.core.detector import _band_arrays


def brute_force(coeffs, rated_mask, global_values, config):
    """Per-pair python reference for the vectorised band computation."""
    n = coeffs.shape[0]
    if global_values.size:
        g_center = float(global_values.mean())
        g_spread = float(global_values.max() - global_values.min())
    else:
        g_center, g_spread = 0.0, 0.0
    centers = np.full((n, n), g_center)
    spreads = np.full((n, n), g_spread)
    if config.center is GaussianCenter.GLOBAL:
        return centers, spreads
    for i in range(n):
        rated = [j for j in range(n) if rated_mask[i, j]]
        for j in range(n):
            loo = [coeffs[i, k] for k in rated if k != j]
            if not loo:
                continue
            if config.center is GaussianCenter.AUTO and len(loo) < config.min_band_size:
                continue
            centers[i, j] = sum(loo) / len(loo)
            spreads[i, j] = max(loo) - min(loo)
    return centers, spreads


def assert_matches_reference(coeffs, rated_mask, global_values, config):
    got_c, got_s = _band_arrays(coeffs, rated_mask, global_values, config)
    want_c, want_s = brute_force(coeffs, rated_mask, global_values, config)
    np.testing.assert_allclose(got_c, want_c, atol=1e-12, rtol=0.0)
    np.testing.assert_allclose(got_s, want_s, atol=1e-12, rtol=0.0)
    assert np.all(np.isfinite(got_c)) and np.all(np.isfinite(got_s))


GLOBAL_VALUES = np.array([0.2, 0.4, 0.9])


class TestSingleRatedPeer:
    """One rated peer: the LOO set for that pair is empty, so its band must
    fall back (RATER/AUTO → global), and the ±inf sort sentinels used to
    expose the runner-up must never leak into any output cell."""

    def setup_method(self):
        self.n = 4
        self.coeffs = np.array(
            [
                [0.0, 0.7, 0.1, 0.3],
                [0.2, 0.0, 0.5, 0.6],
                [0.9, 0.8, 0.0, 0.4],
                [0.3, 0.1, 0.2, 0.0],
            ]
        )
        self.rated = np.zeros((self.n, self.n), dtype=bool)
        self.rated[0, 1] = True  # rater 0 rated exactly one node

    @pytest.mark.parametrize("center", ["rater", "auto", "global"])
    def test_matches_reference_without_inf_leak(self, center):
        config = SocialTrustConfig(center=center)
        assert_matches_reference(self.coeffs, self.rated, GLOBAL_VALUES, config)

    def test_judged_pair_falls_back_to_global(self):
        config = SocialTrustConfig(center="rater")
        centers, spreads = _band_arrays(
            self.coeffs, self.rated, GLOBAL_VALUES, config
        )
        # (0, 1) has an empty LOO set → global band.
        assert centers[0, 1] == pytest.approx(GLOBAL_VALUES.mean())
        assert spreads[0, 1] == pytest.approx(0.7)
        # (0, 2) keeps the single-element band {coeffs[0, 1]}, spread 0.
        assert centers[0, 2] == pytest.approx(0.7)
        assert spreads[0, 2] == 0.0


class TestDuplicateExtrema:
    """Two rated peers sharing the row maximum (or minimum): removing one
    must leave the extremum in place — the sorted runner-up equals it."""

    def setup_method(self):
        self.n = 5
        self.coeffs = np.zeros((self.n, self.n))
        # rater 0 rated 1..4 with a duplicated max and duplicated min.
        self.coeffs[0, 1:] = [0.9, 0.9, 0.1, 0.1]
        self.rated = np.zeros((self.n, self.n), dtype=bool)
        self.rated[0, 1:] = True

    @pytest.mark.parametrize("center", ["rater", "auto"])
    def test_matches_reference(self, center):
        config = SocialTrustConfig(center=center)
        assert_matches_reference(self.coeffs, self.rated, GLOBAL_VALUES, config)

    def test_removing_one_duplicate_keeps_spread(self):
        config = SocialTrustConfig(center="rater")
        _, spreads = _band_arrays(self.coeffs, self.rated, GLOBAL_VALUES, config)
        # Dropping either duplicate still leaves 0.9 - 0.1 on the table.
        for j in (1, 2, 3, 4):
            assert spreads[0, j] == pytest.approx(0.8)


class TestCenterPolicyAtMinBandSize:
    """AUTO trusts a rater's own band only at ``loo_size >= min_band_size``;
    RATER trusts any non-empty band; GLOBAL never does."""

    def setup_method(self):
        self.n = 6
        rng = np.random.default_rng(7)
        self.coeffs = rng.random((self.n, self.n))
        np.fill_diagonal(self.coeffs, 0.0)
        self.rated = np.zeros((self.n, self.n), dtype=bool)
        # rater 0 rated exactly min_band_size nodes → judged pairs inside
        # the rated set have loo_size = min_band_size - 1 (AUTO: global),
        # pairs outside it have loo_size = min_band_size (AUTO: own band).
        self.rated[0, 1:4] = True

    @pytest.mark.parametrize("center", ["rater", "auto", "global"])
    def test_matches_reference(self, center):
        config = SocialTrustConfig(center=center, min_band_size=3)
        assert_matches_reference(self.coeffs, self.rated, GLOBAL_VALUES, config)

    def test_auto_splits_on_the_boundary(self):
        config = SocialTrustConfig(center="auto", min_band_size=3)
        centers, _ = _band_arrays(self.coeffs, self.rated, GLOBAL_VALUES, config)
        g_center = GLOBAL_VALUES.mean()
        # Judged pair inside the rated set: LOO size 2 < 3 → global.
        assert centers[0, 1] == pytest.approx(g_center)
        # Judged pair outside: LOO size 3 → the rater's own mean.
        own = self.coeffs[0, 1:4].mean()
        assert centers[0, 5] == pytest.approx(own)
        # RATER accepts the size-2 band AUTO rejected.
        rater_centers, _ = _band_arrays(
            self.coeffs, self.rated, GLOBAL_VALUES,
            SocialTrustConfig(center="rater", min_band_size=3),
        )
        loo = [self.coeffs[0, k] for k in (2, 3)]
        assert rater_centers[0, 1] == pytest.approx(np.mean(loo))

    def test_empty_global_values_fall_back_to_zero(self):
        config = SocialTrustConfig(center="auto", min_band_size=3)
        centers, spreads = _band_arrays(
            self.coeffs, self.rated, np.array([]), config
        )
        assert centers[0, 1] == 0.0
        assert spreads[0, 1] == 0.0
