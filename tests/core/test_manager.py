"""Tests for the distributed resource-manager execution path."""

import numpy as np
import pytest

from repro.core import DistributedSocialTrust, SocialTrust
from repro.reputation import EigenTrust
from repro.reputation.base import IntervalRatings, Rating
from repro.social import InteractionLedger, InterestProfiles
from repro.social.generators import paper_social_network
from repro.utils.rng import spawn_rng

N = 12
COLLUDERS = (0, 1)


def build_pair(n_managers=3):
    """A centralised and a distributed SocialTrust over identical state."""
    rng = spawn_rng(11, 0)
    network = paper_social_network(N, COLLUDERS, rng)
    interactions = InteractionLedger(N)
    profiles = InterestProfiles(N, 5)
    profiles.set_declared(0, {0})
    profiles.set_declared(1, {1})
    for i in range(2, N):
        profiles.set_declared(i, {2, 3, 4})
        profiles.record_request(i, 2, 2.0)
    central = SocialTrust(EigenTrust(N, [2]), network, interactions, profiles)
    distributed = DistributedSocialTrust(
        EigenTrust(N, [2]),
        network,
        interactions,
        profiles,
        n_managers=n_managers,
    )
    return central, distributed, interactions


def collusion_interval(interactions, count=50):
    iv = IntervalRatings(N)
    for i in range(N):
        for j in range(N):
            if i != j:
                iv.add(Rating(i, j, 1.0))
                interactions.record(i, j)
    for a, b in [(0, 1), (1, 0)]:
        for _ in range(count):
            iv.add(Rating(a, b, 1.0))
        interactions.record(a, b, count)
    return iv


class TestEquivalence:
    def test_identical_reputations(self):
        central, distributed, interactions = build_pair()
        for _ in range(3):
            iv = collusion_interval(interactions)
            central.update(iv.copy())
            distributed.update(iv)
        assert np.allclose(central.reputations, distributed.reputations)

    def test_identical_findings(self):
        central, distributed, interactions = build_pair()
        iv = collusion_interval(interactions)
        central.update(iv.copy())
        distributed.update(iv)
        c = {(f.rater, f.ratee) for f in central.last_detection.findings}
        d = {(f.rater, f.ratee) for f in distributed.last_detection.findings}
        assert c == d


class TestAssignment:
    def test_round_robin_default(self):
        _, distributed, _ = build_pair(n_managers=4)
        assert len(distributed.managers) == 4
        assert distributed.manager_of(0).manager_id == 0
        assert distributed.manager_of(5).manager_id == 1

    def test_explicit_assignment(self):
        rng = spawn_rng(11, 0)
        network = paper_social_network(N, COLLUDERS, rng)
        interactions = InteractionLedger(N)
        profiles = InterestProfiles(N, 5)
        for i in range(N):
            profiles.set_declared(i, {0})
        assignment = [0] * 6 + [1] * 6
        dist = DistributedSocialTrust(
            EigenTrust(N, [2]),
            network,
            interactions,
            profiles,
            assignment=assignment,
        )
        assert dist.manager_of(0).manager_id == 0
        assert dist.manager_of(11).manager_id == 1
        assert dist.manager_of(3) is dist.manager_of(5)

    def test_rejects_bad_assignment_shape(self):
        rng = spawn_rng(11, 0)
        network = paper_social_network(N, COLLUDERS, rng)
        interactions = InteractionLedger(N)
        profiles = InterestProfiles(N, 5)
        for i in range(N):
            profiles.set_declared(i, {0})
        with pytest.raises(ValueError):
            DistributedSocialTrust(
                EigenTrust(N, [2]),
                network,
                interactions,
                profiles,
                assignment=[0, 1],
            )

    def test_dht_assignment_integration(self):
        """A Chord ring supplies the node -> manager responsibility map."""
        from repro.p2p import ChordRing

        rng = spawn_rng(11, 0)
        network = paper_social_network(N, COLLUDERS, rng)
        interactions = InteractionLedger(N)
        profiles = InterestProfiles(N, 5)
        for i in range(N):
            profiles.set_declared(i, {0})
        ring = ChordRing(range(4))
        dist = DistributedSocialTrust(
            EigenTrust(N, [2]),
            network,
            interactions,
            profiles,
            assignment=ring.assignment(N),
        )
        for node in range(N):
            assert dist.manager_of(node).manager_id == ring.manager_for(node)

    def test_rejects_zero_managers(self):
        rng = spawn_rng(11, 0)
        network = paper_social_network(N, COLLUDERS, rng)
        interactions = InteractionLedger(N)
        profiles = InterestProfiles(N, 5)
        for i in range(N):
            profiles.set_declared(i, {0})
        with pytest.raises(ValueError):
            DistributedSocialTrust(
                EigenTrust(N, [2]), network, interactions, profiles, n_managers=0
            )


class TestMessageAccounting:
    def test_cross_manager_traffic_counted(self):
        _, distributed, interactions = build_pair(n_managers=3)
        distributed.update(collusion_interval(interactions))
        assert distributed.total_messages > 0
        kinds = set()
        for manager in distributed.managers:
            kinds |= set(manager.messages_sent)
        assert "rating_report" in kinds

    def test_info_round_trips_for_cross_manager_findings(self):
        _, distributed, interactions = build_pair(n_managers=2)
        # Colluders 0 and 1 land on different managers (round robin).
        distributed.update(collusion_interval(interactions))
        requests = sum(
            m.messages_sent.get("info_request", 0) for m in distributed.managers
        )
        responses = sum(
            m.messages_sent.get("info_response", 0) for m in distributed.managers
        )
        assert requests == responses
        assert requests > 0

    def test_single_manager_no_info_traffic(self):
        _, distributed, interactions = build_pair(n_managers=1)
        distributed.update(collusion_interval(interactions))
        assert all(
            m.messages_sent.get("info_request", 0) == 0
            and m.messages_sent.get("rating_report", 0) == 0
            for m in distributed.managers
        )

    def test_reset_clears_messages(self):
        _, distributed, interactions = build_pair()
        distributed.update(collusion_interval(interactions))
        distributed.reset()
        assert distributed.total_messages == 0

    def test_name(self):
        _, distributed, _ = build_pair()
        assert "distributed" in distributed.name
