"""Tests for the distributed resource-manager execution path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DistributedSocialTrust, SocialTrust
from repro.core.manager import ResourceManager
from repro.faults import FaultConfig, FaultInjector
from repro.p2p import ChordRing
from repro.reputation import EigenTrust
from repro.reputation.base import IntervalRatings, Rating
from repro.social import InteractionLedger, InterestProfiles
from repro.social.generators import paper_social_network
from repro.utils.rng import spawn_rng

N = 12
COLLUDERS = (0, 1)


def build_pair(n_managers=3):
    """A centralised and a distributed SocialTrust over identical state."""
    rng = spawn_rng(11, 0)
    network = paper_social_network(N, COLLUDERS, rng)
    interactions = InteractionLedger(N)
    profiles = InterestProfiles(N, 5)
    profiles.set_declared(0, {0})
    profiles.set_declared(1, {1})
    for i in range(2, N):
        profiles.set_declared(i, {2, 3, 4})
        profiles.record_request(i, 2, 2.0)
    central = SocialTrust(EigenTrust(N, [2]), network, interactions, profiles)
    distributed = DistributedSocialTrust(
        EigenTrust(N, [2]),
        network,
        interactions,
        profiles,
        n_managers=n_managers,
    )
    return central, distributed, interactions


def collusion_interval(interactions, count=50):
    iv = IntervalRatings(N)
    for i in range(N):
        for j in range(N):
            if i != j:
                iv.add(Rating(i, j, 1.0))
                interactions.record(i, j)
    for a, b in [(0, 1), (1, 0)]:
        for _ in range(count):
            iv.add(Rating(a, b, 1.0))
        interactions.record(a, b, count)
    return iv


class TestEquivalence:
    def test_identical_reputations(self):
        central, distributed, interactions = build_pair()
        for _ in range(3):
            iv = collusion_interval(interactions)
            central.update(iv.copy())
            distributed.update(iv)
        assert np.allclose(central.reputations, distributed.reputations)

    def test_identical_findings(self):
        central, distributed, interactions = build_pair()
        iv = collusion_interval(interactions)
        central.update(iv.copy())
        distributed.update(iv)
        c = {(f.rater, f.ratee) for f in central.last_detection.findings}
        d = {(f.rater, f.ratee) for f in distributed.last_detection.findings}
        assert c == d


class TestAssignment:
    def test_round_robin_default(self):
        _, distributed, _ = build_pair(n_managers=4)
        assert len(distributed.managers) == 4
        assert distributed.manager_of(0).manager_id == 0
        assert distributed.manager_of(5).manager_id == 1

    def test_explicit_assignment(self):
        rng = spawn_rng(11, 0)
        network = paper_social_network(N, COLLUDERS, rng)
        interactions = InteractionLedger(N)
        profiles = InterestProfiles(N, 5)
        for i in range(N):
            profiles.set_declared(i, {0})
        assignment = [0] * 6 + [1] * 6
        dist = DistributedSocialTrust(
            EigenTrust(N, [2]),
            network,
            interactions,
            profiles,
            assignment=assignment,
        )
        assert dist.manager_of(0).manager_id == 0
        assert dist.manager_of(11).manager_id == 1
        assert dist.manager_of(3) is dist.manager_of(5)

    def test_rejects_bad_assignment_shape(self):
        rng = spawn_rng(11, 0)
        network = paper_social_network(N, COLLUDERS, rng)
        interactions = InteractionLedger(N)
        profiles = InterestProfiles(N, 5)
        for i in range(N):
            profiles.set_declared(i, {0})
        with pytest.raises(ValueError):
            DistributedSocialTrust(
                EigenTrust(N, [2]),
                network,
                interactions,
                profiles,
                assignment=[0, 1],
            )

    def test_dht_assignment_integration(self):
        """A Chord ring supplies the node -> manager responsibility map."""
        from repro.p2p import ChordRing

        rng = spawn_rng(11, 0)
        network = paper_social_network(N, COLLUDERS, rng)
        interactions = InteractionLedger(N)
        profiles = InterestProfiles(N, 5)
        for i in range(N):
            profiles.set_declared(i, {0})
        ring = ChordRing(range(4))
        dist = DistributedSocialTrust(
            EigenTrust(N, [2]),
            network,
            interactions,
            profiles,
            assignment=ring.assignment(N),
        )
        for node in range(N):
            assert dist.manager_of(node).manager_id == ring.manager_for(node)

    def test_rejects_zero_managers(self):
        rng = spawn_rng(11, 0)
        network = paper_social_network(N, COLLUDERS, rng)
        interactions = InteractionLedger(N)
        profiles = InterestProfiles(N, 5)
        for i in range(N):
            profiles.set_declared(i, {0})
        with pytest.raises(ValueError):
            DistributedSocialTrust(
                EigenTrust(N, [2]), network, interactions, profiles, n_managers=0
            )


class TestMessageAccounting:
    def test_cross_manager_traffic_counted(self):
        _, distributed, interactions = build_pair(n_managers=3)
        distributed.update(collusion_interval(interactions))
        assert distributed.total_messages > 0
        kinds = set()
        for manager in distributed.managers:
            kinds |= set(manager.messages_sent)
        assert "rating_report" in kinds

    def test_info_round_trips_for_cross_manager_findings(self):
        _, distributed, interactions = build_pair(n_managers=2)
        # Colluders 0 and 1 land on different managers (round robin).
        distributed.update(collusion_interval(interactions))
        requests = sum(
            m.messages_sent.get("info_request", 0) for m in distributed.managers
        )
        responses = sum(
            m.messages_sent.get("info_response", 0) for m in distributed.managers
        )
        assert requests == responses
        assert requests > 0

    def test_single_manager_no_info_traffic(self):
        _, distributed, interactions = build_pair(n_managers=1)
        distributed.update(collusion_interval(interactions))
        assert all(
            m.messages_sent.get("info_request", 0) == 0
            and m.messages_sent.get("rating_report", 0) == 0
            for m in distributed.managers
        )

    def test_reset_clears_messages(self):
        _, distributed, interactions = build_pair()
        distributed.update(collusion_interval(interactions))
        distributed.reset()
        assert distributed.total_messages == 0

    def test_name(self):
        _, distributed, _ = build_pair()
        assert "distributed" in distributed.name


class TestRecordMessage:
    def test_zero_count_leaves_no_counter_row(self):
        """Recording zero messages must not materialise a Counter key —
        zero-count rows would skew message-kind enumeration in reports."""
        manager = ResourceManager(manager_id=0, managed=frozenset({0}))
        manager.record_message("rating_report", 0)
        assert "rating_report" not in manager.messages_sent
        assert manager.total_messages == 0

    def test_negative_count_rejected(self):
        manager = ResourceManager(manager_id=0, managed=frozenset({0}))
        with pytest.raises(ValueError):
            manager.record_message("rating_report", -1)

    def test_positive_counts_accumulate(self):
        manager = ResourceManager(manager_id=0, managed=frozenset({0}))
        manager.record_message("info_request")
        manager.record_message("info_request", 3)
        assert manager.messages_sent["info_request"] == 4


def random_interval(rng, interactions, n_ratings=120):
    """A random rating interval (with matching interaction records)."""
    iv = IntervalRatings(N)
    raters = rng.integers(0, N, size=n_ratings)
    ratees = rng.integers(0, N, size=n_ratings)
    values = rng.random(n_ratings)
    for rater, ratee, value in zip(raters, ratees, values):
        if rater != ratee:
            iv.add(Rating(int(rater), int(ratee), float(value)))
            interactions.record(int(rater), int(ratee))
    return iv


class TestEquivalenceProperty:
    """Satellite of the fault-injection PR: the distributed execution is
    bit-identical to the centralised one for *any* seed and manager
    count — including when a zero-rate fault injector is attached."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_managers=st.integers(min_value=1, max_value=8),
    )
    def test_identical_for_any_seed_and_manager_count(self, seed, n_managers):
        rng = spawn_rng(seed, 0)
        network = paper_social_network(N, COLLUDERS, rng)
        central_led = InteractionLedger(N)
        dist_led = InteractionLedger(N)
        profiles = InterestProfiles(N, 5)
        for i in range(N):
            profiles.set_declared(i, set(map(int, rng.integers(0, 5, size=2))))
        central = SocialTrust(
            EigenTrust(N, [2]), network, central_led, profiles
        )
        distributed = DistributedSocialTrust(
            EigenTrust(N, [2]),
            network,
            dist_led,
            profiles,
            n_managers=n_managers,
        )
        interval_rng = spawn_rng(seed, 1)
        for _ in range(2):
            state = interval_rng.bit_generator.state
            central.update(random_interval(interval_rng, central_led))
            interval_rng.bit_generator.state = state
            distributed.update(random_interval(interval_rng, dist_led))
            assert np.array_equal(central.reputations, distributed.reputations)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_zero_rate_injector_is_bit_identical(self, seed):
        """Attaching an inert injector must not move a single bit."""
        rng = spawn_rng(seed, 0)
        network = paper_social_network(N, COLLUDERS, rng)
        plain_led = InteractionLedger(N)
        faulty_led = InteractionLedger(N)
        profiles = InterestProfiles(N, 5)
        for i in range(N):
            profiles.set_declared(i, {0, 1})
        ring = ChordRing(range(3))
        plain = DistributedSocialTrust(
            EigenTrust(N, [2]),
            network,
            plain_led,
            profiles,
            assignment=ring.assignment(N),
        )
        injector = FaultInjector(
            N, config=FaultConfig(), rng=spawn_rng(seed, 99)
        )
        faulty = DistributedSocialTrust(
            EigenTrust(N, [2]),
            network,
            faulty_led,
            profiles,
            assignment=ring.assignment(N),
            ring=ring,
            injector=injector,
        )
        interval_rng = spawn_rng(seed, 1)
        for _ in range(2):
            state = interval_rng.bit_generator.state
            plain.update(random_interval(interval_rng, plain_led))
            interval_rng.bit_generator.state = state
            faulty.update(random_interval(interval_rng, faulty_led))
        assert np.array_equal(plain.reputations, faulty.reputations)
        assert injector.metrics.summary()["losses"] == 0
        assert injector.metrics.fallbacks == 0


def build_faulty(n_managers=3, faults=None, seed=11, assignment=None):
    """A distributed system with an injector attached, plus its parts.

    ``assignment=None`` uses the Chord-ring responsibility map; tests that
    need specific nodes under specific managers pass one explicitly (it
    must only use manager ids on the ring).
    """
    rng = spawn_rng(seed, 0)
    network = paper_social_network(N, COLLUDERS, rng)
    interactions = InteractionLedger(N)
    profiles = InterestProfiles(N, 5)
    profiles.set_declared(0, {0})
    profiles.set_declared(1, {1})
    for i in range(2, N):
        profiles.set_declared(i, {2, 3, 4})
        profiles.record_request(i, 2, 2.0)
    ring = ChordRing(range(n_managers))
    injector = FaultInjector(
        N,
        config=faults or FaultConfig(),
        rng=spawn_rng(seed, 0xFA),
    )
    distributed = DistributedSocialTrust(
        EigenTrust(N, [2]),
        network,
        interactions,
        profiles,
        assignment=ring.assignment(N) if assignment is None else assignment,
        ring=ring,
        injector=injector,
    )
    return distributed, injector, interactions, ring


class TestFailover:
    def test_crash_reassigns_to_ring_successor(self):
        distributed, injector, interactions, ring = build_faulty(n_managers=4)
        victim = distributed.manager_of(0).manager_id
        assert distributed.effective_manager_of(0).manager_id == victim
        injector.fail_manager(victim)
        serving = distributed.effective_manager_of(0)
        assert serving is not None
        assert serving.manager_id != victim
        # The failover target is the first *live* ring successor.
        expected = ring.successor_of(victim)
        while expected in injector.down_managers():
            expected = ring.successor_of(expected)
        assert serving.manager_id == expected

    def test_update_under_crash_records_reassignments(self):
        distributed, injector, interactions, _ = build_faulty(n_managers=4)
        victim = distributed.manager_of(0).manager_id
        injector.fail_manager(victim)
        distributed.update(collusion_interval(interactions))
        n_victim_nodes = len(distributed.manager_of(0).managed)
        assert injector.metrics.reassignments >= n_victim_nodes

    def test_recovery_restores_home_manager(self):
        distributed, injector, _, _ = build_faulty(n_managers=4)
        victim = distributed.manager_of(0).manager_id
        injector.fail_manager(victim)
        injector.restore_manager(victim)
        assert distributed.effective_manager_of(0).manager_id == victim

    def test_unreachable_info_falls_back_to_neutral_damping(self):
        """A suspected cross-manager pair whose info round-trip fails gets
        the conservative neutral weight, not full trust or erasure."""
        lossy = FaultConfig(
            message_loss_rate=1.0, max_retries=1, timeout_budget=100.0
        )
        distributed, injector, interactions, _ = build_faulty(
            n_managers=2,
            faults=lossy,
            # Alternating assignment puts colluders 0 and 1 under
            # different managers, forcing info round trips.
            assignment=[i % 2 for i in range(N)],
        )
        for _ in range(3):
            distributed.update(collusion_interval(interactions))
        result = distributed.last_detection
        assert result is not None and result.findings
        cross = [
            f
            for f in result.findings
            if distributed.manager_of(f.rater).manager_id
            != distributed.manager_of(f.ratee).manager_id
        ]
        assert cross, "need at least one cross-manager finding"
        assert injector.metrics.fallbacks >= len(cross)
        assert injector.metrics.total_timeouts > 0

    def test_all_managers_down_every_finding_neutral(self):
        distributed, injector, interactions, _ = build_faulty(n_managers=2)
        # Prime findings fault-free first.
        distributed.update(collusion_interval(interactions))
        for manager in distributed.managers:
            injector.fail_manager(manager.manager_id)
        assert distributed.effective_manager_of(0) is None
        before = injector.metrics.fallbacks
        distributed.update(collusion_interval(interactions))
        result = distributed.last_detection
        assert result is not None and result.findings
        assert injector.metrics.fallbacks - before == len(result.findings)

    def test_neutral_damping_dampens_but_keeps_ratings(self):
        """Under total loss the colluders' mutual ratings are damped to the
        neutral weight — reputations sit between the fault-free adjusted
        run and a run with no detection at all."""
        lossy = FaultConfig(
            message_loss_rate=1.0, max_retries=0, timeout_budget=100.0
        )
        damped, _, led_damped, _ = build_faulty(n_managers=2, faults=lossy)
        clean, _, led_clean, _ = build_faulty(n_managers=2)
        for _ in range(2):
            damped.update(collusion_interval(led_damped))
            clean.update(collusion_interval(led_clean))
        colluder_damped = damped.reputations[list(COLLUDERS)].sum()
        colluder_clean = clean.reputations[list(COLLUDERS)].sum()
        # Neutral damping (0.5) suppresses collusion less than the full
        # detector weight but still applies the detector's row adjustments.
        assert colluder_damped >= colluder_clean

    def test_injector_size_mismatch_rejected(self):
        rng = spawn_rng(11, 0)
        network = paper_social_network(N, COLLUDERS, rng)
        interactions = InteractionLedger(N)
        profiles = InterestProfiles(N, 5)
        for i in range(N):
            profiles.set_declared(i, {0})
        with pytest.raises(ValueError):
            DistributedSocialTrust(
                EigenTrust(N, [2]),
                network,
                interactions,
                profiles,
                n_managers=2,
                injector=FaultInjector(N + 1),
            )

    def test_ring_must_cover_assignment(self):
        rng = spawn_rng(11, 0)
        network = paper_social_network(N, COLLUDERS, rng)
        interactions = InteractionLedger(N)
        profiles = InterestProfiles(N, 5)
        for i in range(N):
            profiles.set_declared(i, {0})
        with pytest.raises(ValueError):
            DistributedSocialTrust(
                EigenTrust(N, [2]),
                network,
                interactions,
                profiles,
                assignment=[5] * N,
                ring=ChordRing(range(3)),
            )
