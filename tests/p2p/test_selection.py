"""Tests for reputation-guided server selection."""

import numpy as np
import pytest

from repro.p2p.selection import SelectionPolicy, select_server
from repro.utils.rng import spawn_rng


@pytest.fixture
def rng():
    return spawn_rng(21, 0)


def pick_many(rng, n=400, **kw):
    picks = [select_server(rng=rng, **kw) for _ in range(n)]
    return [p for p in picks if p is not None]


class TestCapacityFiltering:
    def test_no_candidates(self, rng):
        out = select_server(
            np.array([], dtype=np.int64), np.zeros(3), np.ones(3), rng
        )
        assert out is None

    def test_all_exhausted(self, rng):
        out = select_server(
            np.array([0, 1]), np.zeros(3), np.zeros(3, dtype=np.int64), rng
        )
        assert out is None

    def test_only_available_chosen(self, rng):
        capacity = np.array([0, 5, 0])
        for _ in range(20):
            assert (
                select_server(np.array([0, 1, 2]), np.zeros(3), capacity, rng) == 1
            )


class TestPolicies:
    def test_random_ignores_reputation(self, rng):
        reps = np.array([0.0, 0.99, 0.0])
        picks = pick_many(
            rng,
            candidates=np.array([0, 1, 2]),
            reputations=reps,
            remaining_capacity=np.ones(3, dtype=np.int64),
            policy=SelectionPolicy.RANDOM,
        )
        counts = np.bincount(picks, minlength=3)
        assert counts.min() > 60  # roughly uniform

    def test_threshold_random_prefers_qualified(self, rng):
        reps = np.array([0.005, 0.5, 0.6])
        picks = pick_many(
            rng,
            candidates=np.array([0, 1, 2]),
            reputations=reps,
            remaining_capacity=np.ones(3, dtype=np.int64),
            policy=SelectionPolicy.THRESHOLD_RANDOM,
            threshold=0.01,
        )
        assert 0 not in picks
        counts = np.bincount(picks, minlength=3)
        # Uniform among qualified, not reputation-proportional.
        assert abs(counts[1] - counts[2]) < 80

    def test_threshold_fallback_when_none_qualify(self, rng):
        reps = np.zeros(3)
        picks = pick_many(
            rng,
            candidates=np.array([0, 1, 2]),
            reputations=reps,
            remaining_capacity=np.ones(3, dtype=np.int64),
            policy=SelectionPolicy.THRESHOLD_RANDOM,
        )
        assert set(picks) == {0, 1, 2}

    def test_reputation_weighted_proportional(self, rng):
        reps = np.array([0.0, 0.1, 0.4])
        picks = pick_many(
            rng,
            candidates=np.array([0, 1, 2]),
            reputations=reps,
            remaining_capacity=np.ones(3, dtype=np.int64),
            policy=SelectionPolicy.REPUTATION_WEIGHTED,
            threshold=0.01,
        )
        counts = np.bincount(picks, minlength=3)
        assert counts[0] == 0
        assert counts[2] > 2 * counts[1]

    def test_exploration_feeds_unqualified(self, rng):
        reps = np.array([0.0, 0.5])
        picks = pick_many(
            rng,
            candidates=np.array([0, 1]),
            reputations=reps,
            remaining_capacity=np.ones(2, dtype=np.int64),
            policy=SelectionPolicy.THRESHOLD_RANDOM,
            exploration=0.5,
        )
        counts = np.bincount(picks, minlength=2)
        # Node 0 only reachable through exploration: ~25% of picks.
        assert 40 < counts[0] < 170

    def test_zero_exploration_starves_unqualified(self, rng):
        reps = np.array([0.0, 0.5])
        picks = pick_many(
            rng,
            candidates=np.array([0, 1]),
            reputations=reps,
            remaining_capacity=np.ones(2, dtype=np.int64),
            policy=SelectionPolicy.THRESHOLD_RANDOM,
            exploration=0.0,
        )
        assert set(picks) == {1}

    def test_rejects_bad_exploration(self, rng):
        with pytest.raises(ValueError):
            select_server(
                np.array([0]),
                np.zeros(1),
                np.ones(1, dtype=np.int64),
                rng,
                exploration=1.5,
            )
