"""Tests for the discrete-cycle simulation engine."""

import numpy as np
import pytest

from repro.collusion import PairwiseCollusion
from repro.p2p import (
    InterestOverlay,
    Population,
    Simulation,
    SimulationConfig,
)
from repro.reputation import EBayModel, EigenTrust
from repro.social import InteractionLedger, InterestProfiles
from repro.utils.rng import spawn_rng

N = 20
N_INTERESTS = 6


def build_sim(seed=3, collusion=None, cycles=2, system=None, **cfg_kw):
    rng = spawn_rng(seed, 0)
    pop = Population.build(
        N,
        rng,
        pretrusted_ids=[0],
        malicious_ids=[1, 2],
        n_interests=N_INTERESTS,
        interests_per_node=(1, 3),
        capacity=10,
        malicious_authentic_prob=0.2,
    )
    overlay = InterestOverlay([s.interests for s in pop], N_INTERESTS)
    system = system or EigenTrust(N, [0])
    config = SimulationConfig(
        simulation_cycles=cycles,
        query_cycles_per_simulation_cycle=5,
        **cfg_kw,
    )
    sim = Simulation(pop, overlay, system, rng, config=config, collusion=collusion)
    return sim, system


class TestConstruction:
    def test_profiles_autobuilt_from_population(self):
        sim, _ = build_sim()
        assert sim.profiles.declared(0) == sim.population[0].interests

    def test_size_mismatch_rejected(self):
        rng = spawn_rng(3, 0)
        pop = Population.build(
            N, rng, n_interests=N_INTERESTS, interests_per_node=(1, 3)
        )
        overlay = InterestOverlay([s.interests for s in pop], N_INTERESTS)
        with pytest.raises(ValueError):
            Simulation(pop, overlay, EigenTrust(N + 1), rng)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(simulation_cycles=0)
        with pytest.raises(ValueError):
            SimulationConfig(query_cycles_per_simulation_cycle=0)
        with pytest.raises(ValueError):
            SimulationConfig(selection_exploration=2.0)


class TestRun:
    def test_cycles_counted(self):
        sim, _ = build_sim(cycles=3)
        sim.run()
        assert sim.cycles_run == 3
        assert sim.metrics.n_snapshots == 3

    def test_run_override(self):
        sim, _ = build_sim(cycles=5)
        sim.run(2)
        assert sim.cycles_run == 2

    def test_run_rejects_zero(self):
        sim, _ = build_sim()
        with pytest.raises(ValueError):
            sim.run(0)

    def test_requests_recorded(self):
        sim, _ = build_sim()
        sim.run()
        assert sim.metrics.total_requests > 0

    def test_interactions_track_requests(self):
        sim, _ = build_sim()
        sim.run()
        assert sim.interactions.counts_matrix().sum() == sim.metrics.total_served

    def test_profiles_track_requests(self):
        sim, _ = build_sim()
        sim.run()
        assert sim.profiles.summary()["total_requests"] == sim.metrics.total_served

    def test_reputations_updated_per_cycle(self):
        sim, system = build_sim(cycles=1)
        sim.run()
        assert system.reputations.sum() == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        a, _ = build_sim(seed=9)
        b, _ = build_sim(seed=9)
        ra = a.run().final_reputations()
        rb = b.run().final_reputations()
        assert np.allclose(ra, rb)

    def test_different_seeds_differ(self):
        a, _ = build_sim(seed=9)
        b, _ = build_sim(seed=10)
        assert not np.allclose(
            a.run().final_reputations(), b.run().final_reputations()
        )


class TestCollusionIntegration:
    def _interests(self, seed=3):
        rng = spawn_rng(seed, 0)
        pop = Population.build(
            N,
            rng,
            pretrusted_ids=[0],
            malicious_ids=[1, 2],
            n_interests=N_INTERESTS,
            interests_per_node=(1, 3),
            capacity=10,
            malicious_authentic_prob=0.2,
        )
        return [s.interests for s in pop]

    def test_bursts_reach_ledgers(self):
        schedule = PairwiseCollusion(
            [1, 2], self._interests(), ratings_per_cycle=7
        )
        sim, _ = build_sim(collusion=schedule, cycles=1)
        sim.run()
        # 5 query cycles x 7 ratings in each direction.
        assert sim.interactions.frequency(1, 2) >= 35

    def test_bursts_do_not_count_as_requests(self):
        schedule = PairwiseCollusion(
            [1, 2], self._interests(), ratings_per_cycle=7
        )
        sim, _ = build_sim(collusion=schedule, cycles=1)
        sim.run()
        # Request counters only track genuine service requests.
        assert sim.profiles.summary()["total_requests"] == sim.metrics.total_served

    def test_collusion_boosts_under_plain_eigentrust(self):
        interests = self._interests()
        plain_sim, _ = build_sim(cycles=4)
        plain = plain_sim.run().final_reputations()
        colluding_sim, _ = build_sim(
            collusion=PairwiseCollusion([1, 2], interests, ratings_per_cycle=20),
            cycles=4,
        )
        colluding = colluding_sim.run().final_reputations()
        assert colluding[[1, 2]].sum() > plain[[1, 2]].sum()


class TestEBaySimulation:
    def test_runs_with_ebay(self):
        sim, system = build_sim(system=EBayModel(N), cycles=2)
        sim.run()
        assert system.intervals_seen == 2
