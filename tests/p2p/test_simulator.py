"""Tests for the discrete-cycle simulation engine."""

import numpy as np
import pytest

from repro.collusion import PairwiseCollusion
from repro.faults import FaultConfig, FaultInjector
from repro.p2p import (
    InterestOverlay,
    Population,
    Simulation,
    SimulationConfig,
)
from repro.reputation import EBayModel, EigenTrust
from repro.utils.rng import spawn_rng

N = 20
N_INTERESTS = 6


def build_sim(
    seed=3, collusion=None, cycles=2, system=None, fault_injector=None, **cfg_kw
):
    rng = spawn_rng(seed, 0)
    pop = Population.build(
        N,
        rng,
        pretrusted_ids=[0],
        malicious_ids=[1, 2],
        n_interests=N_INTERESTS,
        interests_per_node=(1, 3),
        capacity=10,
        malicious_authentic_prob=0.2,
    )
    overlay = InterestOverlay([s.interests for s in pop], N_INTERESTS)
    system = system or EigenTrust(N, [0])
    config = SimulationConfig(
        simulation_cycles=cycles,
        query_cycles_per_simulation_cycle=5,
        **cfg_kw,
    )
    sim = Simulation(
        pop,
        overlay,
        system,
        rng,
        config=config,
        collusion=collusion,
        fault_injector=fault_injector,
    )
    return sim, system


class TestConstruction:
    def test_profiles_autobuilt_from_population(self):
        sim, _ = build_sim()
        assert sim.profiles.declared(0) == sim.population[0].interests

    def test_size_mismatch_rejected(self):
        rng = spawn_rng(3, 0)
        pop = Population.build(
            N, rng, n_interests=N_INTERESTS, interests_per_node=(1, 3)
        )
        overlay = InterestOverlay([s.interests for s in pop], N_INTERESTS)
        with pytest.raises(ValueError):
            Simulation(pop, overlay, EigenTrust(N + 1), rng)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(simulation_cycles=0)
        with pytest.raises(ValueError):
            SimulationConfig(query_cycles_per_simulation_cycle=0)
        with pytest.raises(ValueError):
            SimulationConfig(selection_exploration=2.0)


class TestRun:
    def test_cycles_counted(self):
        sim, _ = build_sim(cycles=3)
        sim.run()
        assert sim.cycles_run == 3
        assert sim.metrics.n_snapshots == 3

    def test_run_override(self):
        sim, _ = build_sim(cycles=5)
        sim.run(2)
        assert sim.cycles_run == 2

    def test_run_rejects_zero(self):
        sim, _ = build_sim()
        with pytest.raises(ValueError):
            sim.run(0)

    def test_requests_recorded(self):
        sim, _ = build_sim()
        sim.run()
        assert sim.metrics.total_requests > 0

    def test_interactions_track_requests(self):
        sim, _ = build_sim()
        sim.run()
        assert sim.interactions.counts_matrix().sum() == sim.metrics.total_served

    def test_profiles_track_requests(self):
        sim, _ = build_sim()
        sim.run()
        assert sim.profiles.summary()["total_requests"] == sim.metrics.total_served

    def test_reputations_updated_per_cycle(self):
        sim, system = build_sim(cycles=1)
        sim.run()
        assert system.reputations.sum() == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        a, _ = build_sim(seed=9)
        b, _ = build_sim(seed=9)
        ra = a.run().final_reputations()
        rb = b.run().final_reputations()
        assert np.allclose(ra, rb)

    def test_different_seeds_differ(self):
        a, _ = build_sim(seed=9)
        b, _ = build_sim(seed=10)
        assert not np.allclose(
            a.run().final_reputations(), b.run().final_reputations()
        )


class TestCollusionIntegration:
    def _interests(self, seed=3):
        rng = spawn_rng(seed, 0)
        pop = Population.build(
            N,
            rng,
            pretrusted_ids=[0],
            malicious_ids=[1, 2],
            n_interests=N_INTERESTS,
            interests_per_node=(1, 3),
            capacity=10,
            malicious_authentic_prob=0.2,
        )
        return [s.interests for s in pop]

    def test_bursts_reach_ledgers(self):
        schedule = PairwiseCollusion(
            [1, 2], self._interests(), ratings_per_cycle=7
        )
        sim, _ = build_sim(collusion=schedule, cycles=1)
        sim.run()
        # 5 query cycles x 7 ratings in each direction.
        assert sim.interactions.frequency(1, 2) >= 35

    def test_bursts_do_not_count_as_requests(self):
        schedule = PairwiseCollusion(
            [1, 2], self._interests(), ratings_per_cycle=7
        )
        sim, _ = build_sim(collusion=schedule, cycles=1)
        sim.run()
        # Request counters only track genuine service requests.
        assert sim.profiles.summary()["total_requests"] == sim.metrics.total_served

    def test_collusion_boosts_under_plain_eigentrust(self):
        interests = self._interests()
        plain_sim, _ = build_sim(cycles=4)
        plain = plain_sim.run().final_reputations()
        colluding_sim, _ = build_sim(
            collusion=PairwiseCollusion([1, 2], interests, ratings_per_cycle=20),
            cycles=4,
        )
        colluding = colluding_sim.run().final_reputations()
        assert colluding[[1, 2]].sum() > plain[[1, 2]].sum()


class TestEBaySimulation:
    def test_runs_with_ebay(self):
        sim, system = build_sim(system=EBayModel(N), cycles=2)
        sim.run()
        assert system.intervals_seen == 2


class TestChurn:
    def test_offline_peers_issue_and_serve_nothing(self):
        injector = FaultInjector(N)
        offline = [4, 5, 6]
        for node in offline:
            injector.fail_peer(node)
        sim, _ = build_sim(fault_injector=injector, cycles=2)
        sim.run()
        assert sim.metrics.served_by(offline) == 0
        # No outgoing interactions either: offline peers issue no requests
        # (row sums of the interaction ledger stay zero).
        for node in offline:
            assert sim.interactions.total_out(node) == 0.0

    def test_offline_colluders_stop_rating_bursts(self):
        interests = [
            sorted(spec.interests) for spec in build_sim()[0].population
        ]
        injector = FaultInjector(N)
        injector.fail_peer(1)
        sim, _ = build_sim(
            collusion=PairwiseCollusion([1, 2], interests, ratings_per_cycle=7),
            fault_injector=injector,
            cycles=1,
        )
        sim.run()
        assert sim.interactions.frequency(1, 2) == 0.0
        assert sim.interactions.frequency(2, 1) == 0.0

    def test_ledger_rows_age_out_while_offline(self):
        injector = FaultInjector(
            N, config=FaultConfig(offline_decay=0.5)
        )
        sim, _ = build_sim(fault_injector=injector, cycles=4)
        sim.run_simulation_cycle()
        node = int(np.argmax(sim.interactions.counts_matrix().sum(axis=1)))
        before = sim.interactions.total_out(node)
        assert before > 0
        injector.fail_peer(node)
        sim.run_simulation_cycle()
        assert sim.interactions.total_out(node) == pytest.approx(before * 0.5)
        sim.run_simulation_cycle()
        assert sim.interactions.total_out(node) == pytest.approx(before * 0.25)

    def test_rejoined_peer_participates_again(self):
        injector = FaultInjector(N)
        injector.fail_peer(3)
        sim, _ = build_sim(fault_injector=injector, cycles=2)
        sim.run_simulation_cycle()
        served_while_away = sim.metrics.served_by([3])
        injector.restore_peer(3)
        for _ in range(3):
            sim.run_simulation_cycle()
        assert sim.metrics.served_by([3]) >= served_while_away

    def test_zero_rate_injector_is_bit_identical(self):
        """Wiring an inert injector must not perturb the simulation RNG."""
        plain, _ = build_sim(cycles=3)
        faulty, _ = build_sim(
            cycles=3,
            fault_injector=FaultInjector(
                N, config=FaultConfig(), rng=spawn_rng(99, 0)
            ),
        )
        a = plain.run().reputation_history()
        b = faulty.run().reputation_history()
        assert np.array_equal(a, b)

    def test_fault_series_snapshot_per_cycle(self):
        injector = FaultInjector(
            N,
            config=FaultConfig(peer_leave_rate=0.2, peer_rejoin_rate=0.3),
            rng=spawn_rng(5, 0),
        )
        sim, _ = build_sim(fault_injector=injector, cycles=3)
        metrics = sim.run()
        series = metrics.faults.series()
        assert len(series) == 3
        assert [row["cycle"] for row in series] == [1.0, 2.0, 3.0]
        assert min(row["peers_online"] for row in series) < N

    def test_injector_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_sim(fault_injector=FaultInjector(N + 1))
