"""Tests for the Chord-style DHT."""

import pytest

from repro.p2p.dht import ChordRing


@pytest.fixture
def ring():
    return ChordRing(range(8), bits=16)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ChordRing([])

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            ChordRing([0], bits=4)

    def test_managers_sorted_by_position(self, ring):
        positions = [ring.position_of(m) for m in ring.managers]
        assert positions == sorted(positions)

    def test_deterministic_placement(self):
        a = ChordRing(range(5), bits=16)
        b = ChordRing(range(5), bits=16)
        assert [a.position_of(m) for m in range(5)] == [
            b.position_of(m) for m in range(5)
        ]

    def test_salt_changes_placement(self):
        a = ChordRing(range(5), bits=16, salt="a")
        b = ChordRing(range(5), bits=16, salt="b")
        assert any(a.position_of(m) != b.position_of(m) for m in range(5))


class TestResponsibility:
    def test_manager_for_is_stable(self, ring):
        assert ring.manager_for(42) == ring.manager_for(42)

    def test_assignment_covers_all_nodes(self, ring):
        assignment = ring.assignment(100)
        assert len(assignment) == 100
        assert set(assignment) <= set(ring.managers)

    def test_assignment_roughly_balanced(self):
        ring = ChordRing(range(16), bits=32)
        assignment = ring.assignment(2000)
        counts = {m: assignment.count(m) for m in ring.managers}
        # Consistent hashing without virtual nodes is lumpy but no single
        # manager should own the vast majority.
        assert max(counts.values()) < 2000 * 0.6

    def test_single_manager_owns_everything(self):
        ring = ChordRing([7], bits=16)
        assert set(ring.assignment(50)) == {7}

    def test_removal_only_moves_affected_keys(self):
        """The consistent-hashing property: dropping one manager only
        reassigns the keys it owned."""
        full = ChordRing(range(8), bits=32)
        reduced = ChordRing([m for m in range(8) if m != 3], bits=32)
        before = full.assignment(500)
        after = reduced.assignment(500)
        for node, (b, a) in enumerate(zip(before, after)):
            if b != 3:
                assert a == b, node


class TestLookup:
    def test_route_starts_and_ends_correctly(self, ring):
        for node in (0, 13, 99):
            for origin in ring.managers[:3]:
                route = ring.lookup(origin, node)
                assert route[0] == origin
                assert route[-1] == ring.manager_for(node)

    def test_route_has_no_cycles(self, ring):
        for node in range(20):
            route = ring.lookup(ring.managers[0], node)
            assert len(route) == len(set(route))

    def test_self_lookup_single_entry(self, ring):
        node = 5
        target = ring.manager_for(node)
        assert ring.lookup(target, node) == [target]

    def test_unknown_origin_rejected(self, ring):
        with pytest.raises(KeyError):
            ring.lookup(999, 0)

    def test_hops_logarithmic(self):
        ring = ChordRing(range(64), bits=32)
        mean = ring.mean_lookup_hops(100)
        # log2(64) = 6; greedy finger routing stays in that ballpark.
        assert mean <= 8.0

    def test_two_managers_route(self):
        ring = ChordRing([0, 1], bits=16)
        for node in range(10):
            route = ring.lookup(0, node)
            assert route[-1] == ring.manager_for(node)
            assert len(route) <= 2


class TestFailover:
    def test_successors_form_the_full_cycle(self, ring):
        """Following successor_of from any start visits every manager."""
        start = ring.managers[0]
        visited = [start]
        current = start
        for _ in range(len(ring.managers) - 1):
            current = ring.successor_of(current)
            visited.append(current)
        assert sorted(visited) == sorted(ring.managers)
        assert ring.successor_of(current) == start

    def test_single_manager_is_own_successor(self):
        ring = ChordRing([3], bits=16)
        assert ring.successor_of(3) == 3

    def test_unknown_manager_rejected(self, ring):
        with pytest.raises(KeyError):
            ring.successor_of(999)

    def test_exclusion_moves_to_live_successor(self, ring):
        for node in range(25):
            home = ring.manager_for(node)
            failover = ring.manager_for(node, exclude=frozenset({home}))
            assert failover != home
            # The failover target is home's first non-excluded successor.
            expected = ring.successor_of(home)
            while expected == home:
                expected = ring.successor_of(expected)
            assert failover == expected

    def test_no_exclusion_is_identity(self, ring):
        for node in range(10):
            assert ring.manager_for(node, exclude=frozenset()) == ring.manager_for(
                node
            )

    def test_unaffected_keys_keep_their_manager(self, ring):
        """Excluding one manager only moves the keys it owned."""
        down = ring.managers[2]
        for node in range(50):
            home = ring.manager_for(node)
            if home != down:
                assert ring.manager_for(node, exclude=frozenset({down})) == home

    def test_all_excluded_raises(self, ring):
        with pytest.raises(RuntimeError):
            ring.manager_for(0, exclude=frozenset(ring.managers))
