"""Tests for the interest-based overlay."""

import pytest

from repro.p2p.network import InterestOverlay


@pytest.fixture
def overlay():
    sets = [
        frozenset({0, 1}),
        frozenset({1, 2}),
        frozenset({3}),
        frozenset({0, 3}),
    ]
    return InterestOverlay(sets, 4)


class TestNeighbors:
    def test_shared_interest_connects(self, overlay):
        assert overlay.shares_interest(0, 1)  # share 1
        assert overlay.shares_interest(2, 3)  # share 3

    def test_disjoint_not_connected(self, overlay):
        assert not overlay.shares_interest(0, 2)

    def test_no_self_neighbor(self, overlay):
        assert 0 not in overlay.neighbors(0)

    def test_neighbor_lists(self, overlay):
        assert set(overlay.neighbors(0)) == {1, 3}
        assert set(overlay.neighbors(2)) == {3}


class TestProviders:
    def test_providers_of_interest(self, overlay):
        assert set(overlay.providers(0)) == {0, 3}
        assert set(overlay.providers(3)) == {2, 3}

    def test_empty_interest(self):
        overlay = InterestOverlay([frozenset({0})], 2)
        assert overlay.providers(1).size == 0

    def test_candidate_servers_exclude_self(self, overlay):
        assert set(overlay.candidate_servers(0, 0)) == {3}
        assert set(overlay.candidate_servers(3, 0)) == {0}

    def test_candidate_servers_empty_when_sole_provider(self):
        overlay = InterestOverlay([frozenset({0}), frozenset({1})], 2)
        assert overlay.candidate_servers(0, 0).size == 0


class TestValidation:
    def test_rejects_empty_interest_set(self):
        with pytest.raises(ValueError):
            InterestOverlay([frozenset()], 3)

    def test_rejects_out_of_range_interest(self):
        with pytest.raises(ValueError):
            InterestOverlay([frozenset({5})], 3)

    def test_rejects_no_nodes(self):
        with pytest.raises(ValueError):
            InterestOverlay([], 3)

    def test_membership_read_only(self, overlay):
        with pytest.raises(ValueError):
            overlay.interest_membership()[0, 0] = False

    def test_sizes(self, overlay):
        assert overlay.n_nodes == 4
        assert overlay.n_interests == 4
