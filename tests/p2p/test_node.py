"""Tests for the peer behaviour models."""

import numpy as np
import pytest

from repro.p2p.node import NodeKind, NodeSpec, Population
from repro.utils.rng import spawn_rng


def spec(node_id=0, **kw):
    defaults = dict(
        kind=NodeKind.NORMAL,
        authentic_prob=0.8,
        capacity=50,
        activity=0.7,
        interests=frozenset({1}),
    )
    defaults.update(kw)
    return NodeSpec(node_id=node_id, **defaults)


class TestNodeSpec:
    def test_valid(self):
        s = spec()
        assert s.kind is NodeKind.NORMAL

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            spec(authentic_prob=1.5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            spec(capacity=0)

    def test_rejects_empty_interests(self):
        with pytest.raises(ValueError):
            spec(interests=frozenset())


class TestPopulation:
    def test_dense_ids_required(self):
        with pytest.raises(ValueError):
            Population([spec(node_id=1)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Population([])

    def test_indexing_and_iteration(self):
        pop = Population([spec(0), spec(1, activity=0.9)])
        assert pop[1].activity == 0.9
        assert len(list(pop)) == 2
        assert len(pop) == 2


class TestBuild:
    @pytest.fixture
    def pop(self):
        return Population.build(
            30,
            spawn_rng(5, 0),
            pretrusted_ids=[0, 1],
            malicious_ids=[2, 3, 4],
            n_interests=10,
            malicious_authentic_prob=0.2,
        )

    def test_kinds_assigned(self, pop):
        assert pop.ids_of_kind(NodeKind.PRETRUSTED) == (0, 1)
        assert pop.ids_of_kind(NodeKind.MALICIOUS) == (2, 3, 4)
        assert len(pop.ids_of_kind(NodeKind.NORMAL)) == 25

    def test_pretrusted_always_authentic(self, pop):
        assert all(pop[i].authentic_prob == 1.0 for i in (0, 1))

    def test_normal_probability(self, pop):
        assert pop[10].authentic_prob == 0.8

    def test_malicious_scalar_b(self, pop):
        assert all(pop[i].authentic_prob == 0.2 for i in (2, 3, 4))

    def test_malicious_range_b(self):
        pop = Population.build(
            30,
            spawn_rng(5, 0),
            malicious_ids=range(10),
            malicious_authentic_prob=(0.2, 0.6),
        )
        probs = [pop[i].authentic_prob for i in range(10)]
        assert all(0.2 <= p <= 0.6 for p in probs)
        assert len(set(probs)) > 1

    def test_activity_in_range(self, pop):
        assert np.all(pop.activity_probs >= 0.5)
        assert np.all(pop.activity_probs <= 1.0)

    def test_interest_count_in_range(self, pop):
        sizes = [len(pop[i].interests) for i in range(30)]
        assert all(1 <= s <= 10 for s in sizes)

    def test_kind_mask(self, pop):
        mask = pop.kind_mask(NodeKind.MALICIOUS)
        assert mask.sum() == 3
        assert mask[2]

    def test_overlapping_roles_rejected(self):
        with pytest.raises(ValueError):
            Population.build(
                10, spawn_rng(0, 0), pretrusted_ids=[0], malicious_ids=[0]
            )

    def test_out_of_range_ids_rejected(self):
        with pytest.raises(ValueError):
            Population.build(5, spawn_rng(0, 0), malicious_ids=[9])

    def test_bad_interest_range_rejected(self):
        with pytest.raises(ValueError):
            Population.build(
                5, spawn_rng(0, 0), n_interests=4, interests_per_node=(1, 10)
            )

    def test_deterministic(self):
        a = Population.build(20, spawn_rng(3, 0), malicious_ids=[1])
        b = Population.build(20, spawn_rng(3, 0), malicious_ids=[1])
        assert all(x.interests == y.interests for x, y in zip(a, b))
