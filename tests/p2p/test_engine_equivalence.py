"""Scalar vs batched query-engine equivalence.

The batched engine (:mod:`repro.p2p.engine`) promises to consume the RNG
stream draw-for-draw like the scalar reference loop, so whole simulations
must come out **bit-identical** — not merely close — across selection
policies, exploration, collusion schedules, SocialTrust variants, and
churn.  These tests are the contract; the benchmark in
``benchmarks/test_bench_engine.py`` shows the speed side of the trade.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collusion import PairwiseCollusion
from repro.core import SocialTrust, SocialTrustConfig
from repro.core.config import CommonFriendAggregate
from repro.experiments import CollusionKind, SystemKind, WorldConfig, build_world
from repro.faults import FaultConfig, FaultInjector
from repro.p2p import (
    EngineMode,
    InterestOverlay,
    Population,
    SelectionPolicy,
    Simulation,
    SimulationConfig,
)
from repro.reputation import EigenTrust
from repro.social import InteractionLedger, InterestProfiles
from repro.social.generators import paper_social_network
from repro.utils.rng import spawn_rng

#: Small world, tiny capacity: every query cycle exhausts several servers,
#: exercising the engine's candidate-list maintenance, not just the happy
#: path.
SMALL = dict(
    n_nodes=24,
    n_pretrusted=2,
    n_colluders=6,
    n_interests=5,
    interests_per_node=(1, 3),
    capacity=3,
    simulation_cycles=3,
    query_cycles=5,
)


def run_world(engine, seed, **overrides):
    """(reputation history, interaction counts, request totals) for one run."""
    config = WorldConfig(**{**SMALL, **overrides}, engine=engine)
    world = build_world(config, seed=seed)
    metrics = world.simulation.run()
    return (
        metrics.reputation_history(),
        world.interactions.counts_matrix().copy(),
        (metrics.total_requests, metrics.total_served, metrics.unserved),
    )


def assert_identical(seed, **overrides):
    hist_s, counts_s, totals_s = run_world(EngineMode.SCALAR, seed, **overrides)
    hist_b, counts_b, totals_b = run_world(EngineMode.BATCHED, seed, **overrides)
    assert totals_b == totals_s
    assert np.array_equal(counts_b, counts_s)
    assert np.array_equal(hist_b, hist_s)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("policy", list(SelectionPolicy))
def test_bit_identical_across_policies(seed, policy):
    assert_identical(
        seed, collusion=CollusionKind.NONE, selection_policy=policy
    )


@pytest.mark.parametrize("exploration", [0.0, 0.2, 1.0])
def test_bit_identical_across_exploration(exploration):
    assert_identical(
        7, collusion=CollusionKind.NONE, selection_exploration=exploration
    )


@pytest.mark.parametrize("hardened", [False, True])
@pytest.mark.parametrize(
    "aggregate", [CommonFriendAggregate.MEAN, CommonFriendAggregate.SUM]
)
def test_bit_identical_with_socialtrust_and_pcm(hardened, aggregate):
    assert_identical(
        1,
        collusion=CollusionKind.PCM,
        system=SystemKind.EIGENTRUST_SOCIALTRUST,
        socialtrust=SocialTrustConfig(
            hardened=hardened, common_friend_aggregate=aggregate
        ),
    )


@pytest.mark.parametrize("collusion", [CollusionKind.MCM, CollusionKind.MMM])
def test_bit_identical_with_multinode_collusion(collusion):
    assert_identical(
        2, collusion=collusion, system=SystemKind.EIGENTRUST_SOCIALTRUST
    )


def _churn_sim(engine, seed):
    """Manual wiring (build_world has no injector hook) with heavy churn."""
    n, n_interests = 20, 5
    rng = spawn_rng(seed, 0)
    pop = Population.build(
        n,
        rng,
        pretrusted_ids=[0, 1],
        malicious_ids=[2, 3, 4, 5],
        n_interests=n_interests,
        interests_per_node=(1, 3),
        capacity=3,
        malicious_authentic_prob=0.3,
    )
    overlay = InterestOverlay([s.interests for s in pop], n_interests)
    network = paper_social_network(n, (2, 3, 4, 5), rng)
    interactions = InteractionLedger(n)
    profiles = InterestProfiles(n, n_interests)
    for spec in pop:
        profiles.set_declared(spec.node_id, spec.interests)
    system = SocialTrust(
        EigenTrust(n, [0, 1]), network, interactions, profiles
    )
    attack = PairwiseCollusion(
        [2, 3, 4, 5], [s.interests for s in pop], ratings_per_cycle=5
    )
    injector = FaultInjector(
        n,
        config=FaultConfig(
            peer_leave_rate=0.15, peer_rejoin_rate=0.3, offline_decay=0.5
        ),
        rng=spawn_rng(seed, 1),
    )
    sim = Simulation(
        pop,
        overlay,
        system,
        rng,
        config=SimulationConfig(
            simulation_cycles=4,
            query_cycles_per_simulation_cycle=5,
            engine=engine,
        ),
        collusion=attack,
        interactions=interactions,
        profiles=profiles,
        fault_injector=injector,
    )
    return sim, interactions


@pytest.mark.parametrize("seed", [0, 5, 9])
def test_bit_identical_under_churn_and_decay(seed):
    """Churn drives ``decay_nodes`` between intervals — the case where the
    incremental closeness cache takes its low-rank path."""
    results = []
    for engine in (EngineMode.SCALAR, EngineMode.BATCHED):
        sim, interactions = _churn_sim(engine, seed)
        metrics = sim.run()
        results.append(
            (metrics.reputation_history(), interactions.counts_matrix().copy())
        )
    (hist_s, counts_s), (hist_b, counts_b) = results
    assert np.array_equal(counts_b, counts_s)
    assert np.array_equal(hist_b, hist_s)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    capacity=st.integers(1, 4),
    policy=st.sampled_from(list(SelectionPolicy)),
    exploration=st.floats(0.0, 1.0, allow_nan=False),
    collusion=st.sampled_from([CollusionKind.NONE, CollusionKind.PCM]),
)
def test_property_bit_identical(seed, capacity, policy, exploration, collusion):
    """Hypothesis sweep: any (seed, capacity, policy, exploration, attack)
    combination must agree bit-for-bit between the two engines."""
    assert_identical(
        seed,
        capacity=capacity,
        selection_policy=policy,
        selection_exploration=exploration,
        collusion=collusion,
        simulation_cycles=2,
        query_cycles=4,
    )
