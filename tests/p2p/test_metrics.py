"""Tests for the metrics collector."""

import numpy as np
import pytest

from repro.p2p.metrics import MetricsCollector


class TestRouting:
    def test_record_request(self):
        m = MetricsCollector(4)
        m.record_request(0, 1)
        m.record_request(2, 1)
        assert m.total_requests == 2
        assert m.total_served == 2
        assert m.served_by([1]) == 2

    def test_unserved(self):
        m = MetricsCollector(4)
        m.record_unserved(0)
        assert m.total_requests == 1
        assert m.total_served == 0
        assert m.unserved == 1

    def test_fraction_served_by(self):
        m = MetricsCollector(4)
        m.record_request(0, 1)
        m.record_request(0, 2)
        m.record_request(0, 2)
        m.record_request(3, 1)
        assert m.fraction_served_by([2]) == pytest.approx(0.5)

    def test_fraction_zero_when_no_requests(self):
        assert MetricsCollector(3).fraction_served_by([0]) == 0.0

    def test_served_by_empty_group(self):
        m = MetricsCollector(3)
        m.record_request(0, 1)
        assert m.served_by([]) == 0


class TestSnapshots:
    def test_history_shape(self):
        m = MetricsCollector(3)
        m.snapshot(np.array([0.2, 0.3, 0.5]))
        m.snapshot(np.array([0.1, 0.4, 0.5]))
        assert m.reputation_history().shape == (2, 3)
        assert m.n_snapshots == 2

    def test_final_reputations(self):
        m = MetricsCollector(2)
        m.snapshot(np.array([0.5, 0.5]))
        m.snapshot(np.array([0.9, 0.1]))
        assert np.allclose(m.final_reputations(), [0.9, 0.1])

    def test_empty_history(self):
        m = MetricsCollector(2)
        assert m.reputation_history().shape == (0, 2)
        assert np.all(m.final_reputations() == 0.0)

    def test_snapshot_copies(self):
        m = MetricsCollector(2)
        reps = np.array([0.5, 0.5])
        m.snapshot(reps)
        reps[0] = 0.0
        assert m.final_reputations()[0] == 0.5

    def test_rejects_wrong_shape(self):
        m = MetricsCollector(2)
        with pytest.raises(ValueError):
            m.snapshot(np.zeros(3))


class TestConvergence:
    def _collector(self, series):
        m = MetricsCollector(2)
        for value in series:
            m.snapshot(np.array([value, 0.0]))
        return m

    def test_converged_from_start(self):
        m = self._collector([0.0001, 0.0002, 0.0001])
        assert m.cycles_until_below([0], 0.001) == 1

    def test_converges_midway(self):
        m = self._collector([0.5, 0.2, 0.0005, 0.0004])
        assert m.cycles_until_below([0], 0.001) == 3

    def test_relapse_counts_from_last_failure(self):
        m = self._collector([0.0001, 0.5, 0.0001, 0.0002])
        assert m.cycles_until_below([0], 0.001) == 3

    def test_never_converges(self):
        m = self._collector([0.5, 0.5, 0.5])
        assert m.cycles_until_below([0], 0.001) is None

    def test_fails_on_final_cycle(self):
        m = self._collector([0.0001, 0.0001, 0.5])
        assert m.cycles_until_below([0], 0.001) is None

    def test_no_history(self):
        m = MetricsCollector(2)
        assert m.cycles_until_below([0], 0.001) is None

    def test_requires_nodes(self):
        m = self._collector([0.1])
        with pytest.raises(ValueError):
            m.cycles_until_below([], 0.001)

    def test_all_nodes_must_converge(self):
        m = MetricsCollector(2)
        m.snapshot(np.array([0.0001, 0.5]))
        assert m.cycles_until_below([0, 1], 0.001) is None


class TestFaultObservability:
    def test_default_faults_empty(self):
        m = MetricsCollector(3)
        assert m.faults.summary()["events"] == 0
        assert m.faults.series() == ()

    def test_attach_faults_adopts_external_sink(self):
        from repro.faults import FaultMetrics

        m = MetricsCollector(3)
        sink = FaultMetrics()
        m.attach_faults(sink)
        assert m.faults is sink
        sink.record_fallback()
        assert m.faults.fallbacks == 1

    def test_attach_faults_discards_prior_counts(self):
        from repro.faults import FaultMetrics

        m = MetricsCollector(3)
        m.faults.record_fallback()
        replacement = FaultMetrics()
        m.attach_faults(replacement)
        assert m.faults.fallbacks == 0

    def test_attach_faults_is_idempotent_for_same_sink(self):
        from repro.faults import FaultMetrics

        m = MetricsCollector(3)
        sink = FaultMetrics()
        sink.record_fallback()
        m.attach_faults(sink)
        m.attach_faults(sink)
        assert m.faults is sink
        assert m.faults.fallbacks == 1

    def test_attached_sink_is_shared_not_copied(self):
        from repro.faults import FaultMetrics

        m = MetricsCollector(3)
        sink = FaultMetrics()
        m.attach_faults(sink)
        m.faults.record_fallback()
        assert sink.fallbacks == 1


class TestPublish:
    def test_publishes_routing_gauges(self):
        from repro.obs import MetricsRegistry

        m = MetricsCollector(4)
        m.record_request(0, 1)
        m.record_unserved(2)
        m.snapshot(np.zeros(4))
        registry = MetricsRegistry()
        m.publish(registry, cycles_run=7)
        assert registry["sim.requests.issued"].value == 2
        assert registry["sim.requests.served"].value == 1
        assert registry["sim.requests.unserved"].value == 1
        assert registry["sim.snapshots"].value == 1
        assert registry["sim.cycles_run"].value == 7

    def test_cycles_run_optional(self):
        from repro.obs import MetricsRegistry

        m = MetricsCollector(2)
        registry = MetricsRegistry()
        m.publish(registry)
        assert "sim.cycles_run" not in registry

    def test_publish_overwrites_previous_snapshot(self):
        from repro.obs import MetricsRegistry

        m = MetricsCollector(2)
        registry = MetricsRegistry()
        m.publish(registry)
        m.record_request(0, 1)
        m.publish(registry)
        assert registry["sim.requests.issued"].value == 1


class TestReputationErrorSeries:
    def _collector(self, rows):
        m = MetricsCollector(len(rows[0]))
        for row in rows:
            m.snapshot(np.array(row, dtype=float))
        return m

    def test_against_reference_vector(self):
        m = self._collector([[0.5, 0.5], [0.3, 0.7]])
        errors = m.reputation_error_series(np.array([0.5, 0.5]))
        assert errors.shape == (2,)
        assert errors[0] == pytest.approx(0.0)
        assert errors[1] == pytest.approx(0.2)

    def test_against_reference_history(self):
        m = self._collector([[0.5, 0.5], [0.3, 0.7]])
        reference = np.array([[0.5, 0.5], [0.4, 0.6]])
        errors = m.reputation_error_series(reference)
        assert errors[0] == pytest.approx(0.0)
        assert errors[1] == pytest.approx(0.1)

    def test_identical_history_is_zero(self):
        m = self._collector([[0.2, 0.8], [0.6, 0.4]])
        errors = m.reputation_error_series(m.reputation_history())
        assert np.all(errors == 0.0)

    def test_rejects_wrong_vector_shape(self):
        m = self._collector([[0.5, 0.5]])
        with pytest.raises(ValueError):
            m.reputation_error_series(np.zeros(3))

    def test_rejects_wrong_history_shape(self):
        m = self._collector([[0.5, 0.5], [0.3, 0.7]])
        with pytest.raises(ValueError):
            m.reputation_error_series(np.zeros((3, 2)))

    def test_zero_snapshots_against_vector(self):
        m = MetricsCollector(2)
        errors = m.reputation_error_series(np.array([0.5, 0.5]))
        assert errors.shape == (0,)

    def test_zero_snapshots_against_empty_history(self):
        m = MetricsCollector(2)
        errors = m.reputation_error_series(np.zeros((0, 2)))
        assert errors.shape == (0,)

    def test_zero_snapshots_rejects_nonempty_history(self):
        m = MetricsCollector(2)
        with pytest.raises(ValueError):
            m.reputation_error_series(np.zeros((1, 2)))

    def test_mismatched_history_lengths(self):
        m = self._collector([[0.5, 0.5], [0.3, 0.7], [0.2, 0.8]])
        with pytest.raises(ValueError):
            m.reputation_error_series(np.zeros((2, 2)))


class TestBatchedRouting:
    def test_record_requests_matches_scalar(self):
        batched = MetricsCollector(4)
        batched.record_requests(np.array([0, 2, 0]), np.array([1, 1, 3]))
        scalar = MetricsCollector(4)
        for c, s in [(0, 1), (2, 1), (0, 3)]:
            scalar.record_request(c, s)
        assert batched.total_requests == scalar.total_requests
        assert batched.served_by([1, 3]) == scalar.served_by([1, 3])

    def test_record_unserved_many_matches_scalar(self):
        batched = MetricsCollector(4)
        batched.record_unserved_many(np.array([0, 0, 3]))
        scalar = MetricsCollector(4)
        for c in (0, 0, 3):
            scalar.record_unserved(c)
        assert batched.total_requests == scalar.total_requests
        assert batched.unserved == scalar.unserved == 3
