"""Service telemetry: exposition round-trip, watermark-aligned JSONL time
series, and the live health monitor flipping OK -> DEGRADED -> OK across
an injected flood/backpressure window."""

import asyncio
import json

from repro.api import ScenarioSpec
from repro.obs import (
    DEGRADED,
    OK,
    HealthMonitor,
    TelemetrySink,
    default_service_rules,
    parse_prometheus,
    read_telemetry,
    render_prometheus,
)
from repro.obs.schema import validate_jsonl
from repro.serve import (
    QueryRequest,
    RatingEvent,
    ReputationService,
    WatermarkEvent,
)
from repro.serve.driver import serve_socket


def small_spec(**world):
    base = dict(
        n_nodes=20,
        n_pretrusted=2,
        n_colluders=4,
        n_interests=6,
        interests_per_node=[1, 3],
        capacity=10,
        query_cycles=3,
        simulation_cycles=3,
    )
    base.update(world)
    return ScenarioSpec(
        system="EigenTrust+SocialTrust", collusion="pcm", seed=7, world=base
    )


def spread_ratings(service, interval_index, n_raters=10):
    """One interval of well-spread rating traffic (no flood signal)."""
    for rater in range(n_raters):
        service.apply(
            RatingEvent(rater=rater, ratee=(rater + 1) % service.n_nodes, value=1.0)
        )
    service.apply(WatermarkEvent(cycle=interval_index))


def flood_ratings(service, interval_index, n_events=30):
    """One interval dominated by a single rater (the flood signal)."""
    for k in range(n_events):
        service.apply(
            RatingEvent(rater=0, ratee=1 + (k % (service.n_nodes - 1)), value=1.0)
        )
    service.apply(WatermarkEvent(cycle=interval_index))


class TestExpositionFromService:
    def test_live_registry_round_trips(self):
        service = ReputationService(small_spec())
        spread_ratings(service, 0)
        service.apply(QueryRequest(node=1))
        text = render_prometheus(service.metrics)
        families = parse_prometheus(text)
        assert families["repro_serve_events_rating_total"]["samples"][0][2] == 10.0
        assert families["repro_serve_events_total"]["type"] == "counter"
        latency = families["repro_serve_query_latency"]
        assert latency["type"] == "histogram"
        count = [v for n, _, v in latency["samples"] if n.endswith("_count")]
        assert count == [1.0]

    def test_socket_metrics_query(self):
        async def scenario():
            service = ReputationService(small_spec())
            server = await serve_socket(service)
            host, port = server.sockets[0].getsockname()[:2]
            ingest = asyncio.ensure_future(service.run())
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b'{"t":"rating","rater":0,"ratee":1,"value":1.0}\n'
                b'{"t":"watermark"}\n'
                b'{"query":"metrics"}\n'
            )
            await writer.drain()
            reply = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await service.stop()
            await ingest
            return reply

        reply = asyncio.run(scenario())
        assert reply["t"] == "metrics"
        assert "version=0.0.4" in reply["content_type"]
        families = parse_prometheus(reply["exposition"])
        assert "repro_serve_events_rating_total" in families


class TestTelemetryTimeSeries:
    def test_snapshots_align_to_watermarks(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with TelemetrySink(path) as sink:
            service = ReputationService(small_spec(), telemetry_sink=sink)
            for interval in range(3):
                spread_ratings(service, interval)
        events = read_telemetry(path)
        assert [e["interval"] for e in events] == [1, 2, 3]
        assert [e["events_applied"] for e in events] == [10, 20, 30]
        # Each snapshot carries the watermark counter at that interval.
        marks = [
            e["metrics"]["serve.events.watermark"]["value"] for e in events
        ]
        assert marks == [1.0, 2.0, 3.0]
        # Every line validates against the telemetry schema.
        assert validate_jsonl(path) == {"telemetry": 3}

    def test_metrics_every_subsamples(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with TelemetrySink(path, every=2) as sink:
            service = ReputationService(small_spec(), telemetry_sink=sink)
            for interval in range(5):
                spread_ratings(service, interval)
        assert [e["interval"] for e in read_telemetry(path)] == [2, 4]

    def test_series_renders_as_exposition(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with TelemetrySink(path) as sink:
            service = ReputationService(small_spec(), telemetry_sink=sink)
            spread_ratings(service, 0)
        snapshot = read_telemetry(path)[0]["metrics"]
        families = parse_prometheus(render_prometheus(snapshot))
        assert "repro_serve_update_seconds" in families


class TestHealthFlip:
    def test_flood_window_flips_ok_degraded_ok(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        sink = TelemetrySink(path)
        monitor = HealthMonitor(default_service_rules(), sink=sink)
        service = ReputationService(
            small_spec(), telemetry_sink=sink, health=monitor
        )
        interval = 0
        for _ in range(3):  # healthy baseline
            spread_ratings(service, interval)
            interval += 1
        assert monitor.state == OK
        for _ in range(3):  # injected rating flood
            flood_ratings(service, interval)
            interval += 1
        assert monitor.state == DEGRADED
        for _ in range(4):  # flood subsides
            spread_ratings(service, interval)
            interval += 1
        assert monitor.state == OK
        sink.close()

        overall = [
            (t["from"], t["to"])
            for t in monitor.transitions
            if t["scope"] == "overall"
        ]
        assert overall == [(OK, DEGRADED), (DEGRADED, OK)]
        flood_rules = [
            t["rule"] for t in monitor.transitions if t["scope"] == "rule"
        ]
        assert "flood-share" in flood_rules

        # The transitions share the JSONL file with the snapshots, and the
        # whole file validates.
        counts = validate_jsonl(path)
        assert counts["telemetry"] == 10
        assert counts["health"] == 4  # rule+overall, enter+clear

    def test_health_replay_matches_live(self, tmp_path):
        # Replaying the recorded series through a fresh monitor yields the
        # same verdict sequence the live monitor saw.
        path = tmp_path / "telemetry.jsonl"
        sink = TelemetrySink(path)
        live = HealthMonitor(default_service_rules(), sink=sink)
        service = ReputationService(
            small_spec(), telemetry_sink=sink, health=live
        )
        interval = 0
        for phase in (spread_ratings, flood_ratings, flood_ratings, spread_ratings,
                      spread_ratings, spread_ratings):
            phase(service, interval)
            interval += 1
        sink.close()

        replayed = HealthMonitor(default_service_rules())
        replayed.replay(read_telemetry(path))
        assert replayed.state == live.state
        assert [
            (t["rule"], t["from"], t["to"], t["interval"])
            for t in replayed.transitions
        ] == [
            (t["rule"], t["from"], t["to"], t["interval"])
            for t in live.transitions
        ]

    def test_service_health_report_accessor(self):
        monitor = HealthMonitor(default_service_rules())
        service = ReputationService(small_spec(), health=monitor)
        assert service.health is monitor
        spread_ratings(service, 0)
        report = service.health_report()
        assert report["state"] == OK
        assert report["intervals_observed"] == 1

    def test_no_monitor_reports_none(self):
        service = ReputationService(small_spec())
        assert service.health is None
        assert service.health_report() is None


class TestReplayEquivalenceWithTelemetry:
    def test_telemetry_does_not_perturb_reputations(self, tmp_path):
        # Bit-identical histories with and without the telemetry pipeline.
        import numpy as np

        plain = ReputationService(small_spec())
        sink = TelemetrySink(tmp_path / "telemetry.jsonl")
        monitor = HealthMonitor(default_service_rules(), sink=sink)
        instrumented = ReputationService(
            small_spec(), telemetry_sink=sink, health=monitor
        )
        for service in (plain, instrumented):
            interval = 0
            for phase in (spread_ratings, flood_ratings, spread_ratings):
                phase(service, interval)
                interval += 1
        sink.close()
        np.testing.assert_array_equal(plain.history, instrumented.history)
