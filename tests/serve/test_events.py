"""Event types and the line-JSON stream codec."""

import io
import json

import pytest

from repro.serve.events import (
    EVENT_SCHEMA_VERSION,
    ChurnEvent,
    EventDecodeError,
    InteractionEvent,
    QueryRequest,
    QueryResult,
    RatingEvent,
    WatermarkEvent,
    decode_event,
    encode_event,
    iter_event_lines,
    read_event_stream,
    write_event_stream,
)


ROUND_TRIP_EVENTS = [
    RatingEvent(rater=3, ratee=7, value=1.0),
    RatingEvent(rater=3, ratee=7, value=-1.0, interest=2),
    RatingEvent(rater=1, ratee=2, value=1.0, count=8),
    InteractionEvent(source=4, target=5),
    InteractionEvent(source=4, target=5, count=2.5),
    ChurnEvent(nodes=(1, 2, 3), factor=0.5),
    WatermarkEvent(),
    WatermarkEvent(cycle=4),
    QueryRequest(node=9),
    QueryRequest(rater=1, ratee=2),
    QueryRequest(),
]


class TestValidation:
    def test_rating_count_must_be_positive(self):
        with pytest.raises(ValueError, match="count"):
            RatingEvent(rater=0, ratee=1, value=1.0, count=0)

    def test_no_self_ratings(self):
        with pytest.raises(ValueError, match="self-rating"):
            RatingEvent(rater=3, ratee=3, value=1.0)

    def test_interest_bursts_rejected(self):
        with pytest.raises(ValueError, match="burst"):
            RatingEvent(rater=0, ratee=1, value=1.0, count=2, interest=1)

    def test_interaction_self_and_nonpositive(self):
        with pytest.raises(ValueError):
            InteractionEvent(source=2, target=2)
        with pytest.raises(ValueError):
            InteractionEvent(source=0, target=1, count=0.0)

    def test_churn_factor_range(self):
        with pytest.raises(ValueError, match="factor"):
            ChurnEvent(nodes=(0,), factor=1.5)

    def test_churn_nodes_coerced_to_int_tuple(self):
        event = ChurnEvent(nodes=[0.0, 3.0], factor=0.5)
        assert event.nodes == (0, 3)

    def test_query_needs_both_pair_endpoints(self):
        with pytest.raises(ValueError, match="both"):
            QueryRequest(rater=1)

    def test_query_node_xor_pair(self):
        with pytest.raises(ValueError, match="either"):
            QueryRequest(node=0, rater=1, ratee=2)


class TestCodec:
    @pytest.mark.parametrize("event", ROUND_TRIP_EVENTS, ids=repr)
    def test_round_trip(self, event):
        assert decode_event(encode_event(event)) == event

    def test_defaults_elided(self):
        assert "count" not in encode_event(RatingEvent(rater=0, ratee=1, value=1.0))
        assert "interest" not in encode_event(RatingEvent(rater=0, ratee=1, value=1.0))
        assert "cycle" not in encode_event(WatermarkEvent())

    def test_unknown_tag(self):
        with pytest.raises(EventDecodeError, match="unknown event tag"):
            decode_event({"t": "frobnicate"})

    def test_missing_field(self):
        with pytest.raises(EventDecodeError, match="malformed"):
            decode_event({"t": "rating", "rater": 0})

    def test_non_object(self):
        with pytest.raises(EventDecodeError, match="JSON object"):
            decode_event([1, 2, 3])

    def test_encode_rejects_non_events(self):
        with pytest.raises(TypeError):
            encode_event(object())

    def test_query_result_to_dict(self):
        result = QueryResult(
            request=QueryRequest(node=3),
            value=0.25,
            intervals_run=2,
            events_applied=10,
        )
        assert result.to_dict() == {
            "t": "result",
            "value": 0.25,
            "intervals_run": 2,
            "events_applied": 10,
        }


class TestStreamFiles:
    def test_write_read_round_trip_with_spec(self, tmp_path):
        from repro.api import ScenarioSpec

        spec = ScenarioSpec(seed=5, world={"n_nodes": 20})
        path = tmp_path / "stream.jsonl"
        events = [e for e in ROUND_TRIP_EVENTS if not isinstance(e, QueryRequest)]
        written = write_event_stream(path, events, spec=spec)
        assert written == len(events)

        loaded = read_event_stream(path)
        assert loaded.events == tuple(events)
        assert loaded.spec == spec.to_dict()
        assert ScenarioSpec.from_dict(loaded.spec) == spec

    def test_headerless_stream(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        write_event_stream(path, [WatermarkEvent()])
        loaded = read_event_stream(path)
        assert loaded.spec is None
        assert loaded.events == (WatermarkEvent(),)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"t":"watermark"}\n\n{"t":"watermark","cycle":1}\n')
        assert len(read_event_stream(path).events) == 2

    def test_header_must_be_first(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        header = json.dumps({"t": "header", "schema_version": EVENT_SCHEMA_VERSION})
        path.write_text('{"t":"watermark"}\n' + header + "\n")
        with pytest.raises(EventDecodeError, match="first line"):
            read_event_stream(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"t":"header","schema_version":999}\n')
        with pytest.raises(EventDecodeError, match="schema version"):
            read_event_stream(path)

    def test_errors_carry_line_numbers(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"t":"watermark"}\nnot json\n')
        with pytest.raises(EventDecodeError, match="line 2"):
            read_event_stream(path)

    def test_iter_event_lines_matches_read(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        events = [RatingEvent(rater=0, ratee=1, value=1.0), WatermarkEvent(cycle=0)]
        write_event_stream(path, events)
        with path.open() as handle:
            assert list(iter_event_lines(handle)) == events

    def test_iter_event_lines_from_string_handle(self):
        text = '{"t":"query","node":4}\n'
        assert list(iter_event_lines(io.StringIO(text))) == [QueryRequest(node=4)]
