"""Batch-vs-streamed equivalence over the three checked-in golden scenarios.

The streaming contract: replaying a recorded batch run event-by-event
through a fresh :class:`~repro.serve.ReputationService` reproduces the
batch run's reputation vectors at every interval watermark —
bit-identically against the same process's batch history, and within
golden tolerance against the checked-in golden traces (which were
recorded by the batched engine; the scalar recorder is property-tested
bit-identical to it).
"""

from pathlib import Path

import numpy as np
import pytest

from repro.api import ScenarioSpec
from repro.qa import GOLDEN_SCENARIOS
from repro.qa.golden import load_trace
from repro.serve import (
    compare_histories,
    record_scenario_events,
    replay_recorded,
    replay_report,
)

GOLDEN_DIR = Path(__file__).parent.parent / "golden"
GOLDEN_NAMES = sorted(GOLDEN_SCENARIOS)


def golden_spec(name):
    golden = GOLDEN_SCENARIOS[name]
    return ScenarioSpec.from_build(golden.build, seed=golden.seed), golden.cycles


@pytest.fixture(scope="module")
def recorded_streams():
    """Record each golden scenario once; several tests replay them."""
    streams = {}
    for name in GOLDEN_NAMES:
        spec, cycles = golden_spec(name)
        streams[name] = record_scenario_events(spec, cycles)
    return streams


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_stream_matches_batch_bitwise(name, recorded_streams):
    recorded = recorded_streams[name]
    service, report = replay_recorded(recorded)
    assert report.bitwise_equal, (
        f"{name}: streamed replay diverged from batch "
        f"(max abs diff {report.max_abs_diff})"
    )
    assert report.max_abs_diff == 0.0
    assert report.within()
    assert service.intervals_run == report.intervals


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_stream_matches_checked_in_golden(name, recorded_streams):
    """The streamed history agrees with the golden trace on disk."""
    service, _ = replay_recorded(recorded_streams[name])
    records = load_trace(GOLDEN_DIR / f"{name}.jsonl")
    cycles = [r for r in records if r.get("type") == "cycle"]
    assert len(cycles) == service.intervals_run
    golden_history = np.array(
        [r["reputations"] for r in cycles], dtype=np.float64
    )
    report = compare_histories(golden_history, service.history)
    assert report.within(), (
        f"{name}: streamed replay diverged from the checked-in golden "
        f"trace (max abs diff {report.max_abs_diff})"
    )


def test_replay_report_one_call():
    spec, _ = golden_spec("eigentrust_pcm")
    report = replay_report(spec, cycles=2)
    assert report.intervals == 2
    assert report.bitwise_equal


def test_recorded_stream_shape(recorded_streams):
    for name in GOLDEN_NAMES:
        recorded = recorded_streams[name]
        spec, cycles = golden_spec(name)
        assert recorded.batch_history.shape == (
            cycles,
            recorded.spec.world["n_nodes"],
        )
        # The recording spec is the requested spec normalised to the
        # scalar engine (what the taps observe).
        assert recorded.spec.world.get("engine") == "scalar"
        assert recorded.n_events == len(recorded.events)
        # One watermark per batch cycle.
        from repro.serve import WatermarkEvent

        watermarks = [e for e in recorded.events if isinstance(e, WatermarkEvent)]
        assert [w.cycle for w in watermarks] == list(range(cycles))


def test_compare_histories_shape_mismatch():
    with pytest.raises(ValueError, match="shapes differ"):
        compare_histories(np.zeros((2, 3)), np.zeros((3, 3)))
