"""ReputationService: sync core, queries, metrics, and the asyncio loop."""

import asyncio
import json

import numpy as np
import pytest

from repro.api import ScenarioSpec
from repro.serve import (
    ChurnEvent,
    InteractionEvent,
    QueryRequest,
    QueryResult,
    RatingEvent,
    ReputationService,
    ServiceError,
    WatermarkEvent,
)
from repro.serve.driver import drive_lines, serve_socket


def small_spec(**world):
    base = dict(
        n_nodes=20,
        n_pretrusted=2,
        n_colluders=4,
        n_interests=6,
        interests_per_node=[1, 3],
        capacity=10,
        query_cycles=3,
        simulation_cycles=3,
    )
    base.update(world)
    return ScenarioSpec(
        system="EigenTrust+SocialTrust", collusion="pcm", seed=7, world=base
    )


@pytest.fixture(scope="module")
def module_service():
    """One shared read-only-ish service for cheap query tests."""
    return ReputationService(small_spec())


class TestConstruction:
    def test_spec_type_enforced(self):
        with pytest.raises(TypeError, match="ScenarioSpec"):
            ReputationService({"n_nodes": 10})

    def test_interval_events_validated(self):
        with pytest.raises(ValueError, match="interval_events"):
            ReputationService(small_spec(), interval_events=0)

    def test_snapshot_every_requires_path(self):
        with pytest.raises(ValueError, match="snapshot_path"):
            ReputationService(small_spec(), snapshot_every=2)


class TestSyncCore:
    def test_mutations_then_watermark(self):
        service = ReputationService(small_spec())
        assert service.apply(RatingEvent(rater=0, ratee=1, value=1.0)) is None
        assert service.apply(InteractionEvent(source=2, target=3)) is None
        assert service.apply(ChurnEvent(nodes=(4,), factor=0.5)) is None
        assert service.events_applied == 3
        assert service.intervals_run == 0

        reputations = service.apply(WatermarkEvent(cycle=0))
        assert isinstance(reputations, np.ndarray)
        assert reputations.shape == (service.n_nodes,)
        assert service.intervals_run == 1
        assert service.history.shape == (1, service.n_nodes)

    def test_auto_watermark(self):
        service = ReputationService(small_spec(), interval_events=3)
        out = [
            service.apply(RatingEvent(rater=0, ratee=i, value=1.0))
            for i in range(1, 7)
        ]
        # Every third mutation closes an interval.
        assert [o is not None for o in out] == [False, False, True] * 2
        assert service.intervals_run == 2

    def test_stale_watermark_rejected(self):
        service = ReputationService(small_spec())
        service.apply(WatermarkEvent(cycle=0))
        with pytest.raises(ServiceError, match="behind"):
            service.apply(WatermarkEvent(cycle=0))

    def test_unknown_event_type_rejected(self):
        with pytest.raises(TypeError, match="not a service event"):
            ReputationService(small_spec()).apply("rating")

    def test_serve_events_counts_queries(self):
        service = ReputationService(small_spec())
        consumed = service.serve_events(
            [
                RatingEvent(rater=0, ratee=1, value=1.0),
                QueryRequest(node=0),
                WatermarkEvent(),
            ]
        )
        assert consumed == 3
        assert service.events_applied == 1  # queries don't mutate


class TestQueries:
    def test_node_query(self, module_service):
        result = module_service.query(QueryRequest(node=3))
        assert isinstance(result, QueryResult)
        assert result.value == float(module_service.reputations[3])
        assert result.intervals_run == module_service.intervals_run

    def test_full_vector_query(self, module_service):
        result = module_service.query(QueryRequest())
        assert result.value == [float(x) for x in module_service.reputations]

    def test_pair_weight_defaults_to_one(self, module_service):
        # No detector pass has run yet, so no pair is damped.
        assert module_service.query(QueryRequest(rater=0, ratee=1)).value == 1.0

    def test_pair_weight_after_update_reads_detector(self):
        service = ReputationService(small_spec())
        service.serve_events(
            [RatingEvent(rater=0, ratee=1, value=1.0, count=5), WatermarkEvent()]
        )
        value = service.query(QueryRequest(rater=0, ratee=1)).value
        assert 0.0 <= value <= 1.0

    def test_pair_weight_is_one_for_base_systems(self):
        service = ReputationService(
            ScenarioSpec(
                system="EigenTrust",
                seed=1,
                world={"n_nodes": 15, "n_pretrusted": 2, "n_colluders": 3},
            )
        )
        service.serve_events(
            [RatingEvent(rater=0, ratee=1, value=1.0), WatermarkEvent()]
        )
        assert service.query(QueryRequest(rater=0, ratee=1)).value == 1.0

    def test_out_of_range_queries(self, module_service):
        n = module_service.n_nodes
        with pytest.raises(ValueError, match="out of range"):
            module_service.query(QueryRequest(node=n))
        with pytest.raises(ValueError, match="out of range"):
            module_service.query(QueryRequest(rater=0, ratee=n))


class TestMetrics:
    def test_counters_and_stats(self):
        service = ReputationService(small_spec())
        service.serve_events(
            [
                RatingEvent(rater=0, ratee=1, value=1.0),
                RatingEvent(rater=0, ratee=2, value=1.0),
                InteractionEvent(source=1, target=2),
                ChurnEvent(nodes=(3,), factor=0.9),
                QueryRequest(node=0),
                WatermarkEvent(),
            ]
        )
        stats = service.stats()
        metrics = stats["metrics"]
        assert metrics["serve.events.rating"]["value"] == 2
        assert metrics["serve.events.interaction"]["value"] == 1
        assert metrics["serve.events.churn"]["value"] == 1
        assert metrics["serve.events.watermark"]["value"] == 1
        assert metrics["serve.queries"]["value"] == 1
        assert "p99" in metrics["serve.query.latency"]
        assert "p99" in metrics["serve.update.seconds"]
        # Rater 0 produced 2 of the 3 rater-attributed interval events.
        assert metrics["serve.flood.top_rater_share"]["value"] == pytest.approx(2 / 3)
        assert stats["events_applied"] == 4
        assert stats["intervals_run"] == 1
        assert stats["spec"] == service.spec.to_dict()


class TestAsyncLoop:
    def test_run_stream_and_query_async(self):
        service = ReputationService(small_spec())

        async def scenario():
            consumer = asyncio.ensure_future(service.run())
            await service.submit(RatingEvent(rater=0, ratee=1, value=1.0))
            result = await service.query_async(QueryRequest(node=1))
            await service.submit(WatermarkEvent())
            await service.stop()
            processed = await consumer
            return result, processed

        result, processed = asyncio.run(scenario())
        assert processed == 3
        assert result.events_applied == 1
        assert service.intervals_run == 1

    def test_query_async_propagates_errors(self):
        service = ReputationService(small_spec())

        async def scenario():
            consumer = asyncio.ensure_future(service.run())
            with pytest.raises(ValueError, match="out of range"):
                await service.query_async(QueryRequest(node=10_000))
            await service.stop()
            return await consumer

        asyncio.run(scenario())

    def test_run_refuses_reentry(self):
        service = ReputationService(small_spec())

        async def scenario():
            consumer = asyncio.ensure_future(service.run())
            await asyncio.sleep(0)
            with pytest.raises(ServiceError, match="already running"):
                await service.run()
            await service.stop()
            return await consumer

        asyncio.run(scenario())

    def test_submit_nowait_sheds_when_full(self):
        service = ReputationService(small_spec(), queue_maxsize=2)

        async def scenario():
            ok = [
                service.submit_nowait(RatingEvent(rater=0, ratee=1, value=1.0))
                for _ in range(4)
            ]
            return ok

        ok = asyncio.run(scenario())
        assert ok == [True, True, False, False]
        assert service.metrics.as_dict()["serve.queue.shed"]["value"] == 2

    def test_run_stream_processes_everything(self):
        service = ReputationService(small_spec())
        events = [RatingEvent(rater=0, ratee=1, value=1.0)] * 5 + [WatermarkEvent()]
        processed = asyncio.run(service.run_stream(events))
        assert processed == 6
        assert service.events_applied == 5
        assert service.intervals_run == 1


class TestDrivers:
    def test_drive_lines_writes_query_results(self):
        import io

        service = ReputationService(small_spec())
        lines = (
            '{"t":"rating","rater":0,"ratee":1,"value":1.0}\n'
            '{"t":"watermark"}\n'
            '{"t":"query","node":1}\n'
        )
        out = io.StringIO()
        consumed = drive_lines(service, io.StringIO(lines), out=out)
        assert consumed == 3
        result = json.loads(out.getvalue())
        assert result["t"] == "result"
        assert result["intervals_run"] == 1

    def test_socket_round_trip(self):
        service = ReputationService(small_spec())

        async def scenario():
            consumer = asyncio.ensure_future(service.run())
            server = await serve_socket(service)
            host, port = server.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"t":"rating","rater":0,"ratee":1,"value":1.0}\n')
            writer.write(b'{"t":"watermark"}\n')
            writer.write(b'{"t":"query","node":1}\n')
            await writer.drain()
            answer = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await service.stop()
            await consumer
            return answer

        answer = asyncio.run(scenario())
        assert answer["t"] == "result"
        assert answer["intervals_run"] == 1
        assert service.events_applied == 1

    def test_socket_rejects_malformed_line(self):
        service = ReputationService(small_spec())

        async def scenario():
            consumer = asyncio.ensure_future(service.run())
            server = await serve_socket(service)
            host, port = server.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"not json\n")
            await writer.drain()
            answer = json.loads(await reader.readline())
            assert (await reader.readline()) == b""  # connection closed
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await service.stop()
            await consumer
            return answer

        answer = asyncio.run(scenario())
        assert answer["t"] == "error"
