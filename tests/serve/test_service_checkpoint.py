"""Mid-stream service checkpoints: kill-and-resume bit-identity."""

import numpy as np
import pytest

from repro.api import ScenarioSpec
from repro.chaos.checkpoint import resume_scenario, save_checkpoint
from repro.serve import (
    QueryRequest,
    ReputationService,
    record_scenario_events,
    replay_recorded,
)


def small_spec():
    return ScenarioSpec(
        system="EigenTrust+SocialTrust",
        collusion="pcm",
        seed=11,
        world=dict(
            n_nodes=20,
            n_pretrusted=2,
            n_colluders=4,
            n_interests=6,
            interests_per_node=[1, 3],
            capacity=10,
            query_cycles=3,
            simulation_cycles=4,
        ),
    )


@pytest.fixture(scope="module")
def recorded():
    return record_scenario_events(small_spec())


class TestKillAndResume:
    def test_mid_stream_resume_is_bit_identical(self, recorded, tmp_path):
        # Reference: one uninterrupted replay.
        uninterrupted, report = replay_recorded(recorded)
        assert report.bitwise_equal

        # Interrupted: stream to an arbitrary mid-interval split point,
        # snapshot, "crash", resume in a fresh service, stream the rest.
        split = recorded.n_events * 2 // 3
        first = ReputationService(recorded.spec)
        first.serve_events(recorded.events[:split])
        path = first.save_snapshot(tmp_path / "svc.ckpt")

        resumed = ReputationService.from_checkpoint(path)
        assert resumed.events_applied == first.events_applied
        assert resumed.intervals_run == first.intervals_run
        assert np.array_equal(resumed.reputations, first.reputations)

        resumed.serve_events(recorded.events[split:])
        assert np.array_equal(resumed.history, uninterrupted.history)
        assert np.array_equal(resumed.reputations, uninterrupted.reputations)
        assert resumed.events_applied == uninterrupted.events_applied

    def test_snapshot_preserves_query_answers(self, recorded, tmp_path):
        service = ReputationService(recorded.spec)
        service.serve_events(recorded.events[: recorded.n_events // 2])
        path = service.save_snapshot(tmp_path / "svc.ckpt")
        resumed = ReputationService.from_checkpoint(path)
        for request in (QueryRequest(node=0), QueryRequest(rater=0, ratee=1)):
            assert resumed.query(request).value == service.query(request).value

    def test_auto_snapshot_every_watermark(self, recorded, tmp_path):
        path = tmp_path / "auto.ckpt"
        service = ReputationService(
            recorded.spec, snapshot_path=path, snapshot_every=2
        )
        service.serve_events(recorded.events)
        assert path.exists()
        resumed = ReputationService.from_checkpoint(path)
        # The last auto-snapshot landed on the final even watermark.
        assert resumed.intervals_run == (service.intervals_run // 2) * 2
        assert np.array_equal(
            resumed.history, service.history[: resumed.intervals_run]
        )


class TestCheckpointRouting:
    def test_in_memory_restore_round_trip(self, recorded):
        service = ReputationService(recorded.spec)
        service.serve_events(recorded.events[: recorded.n_events // 2])
        state = service.checkpoint()

        other = ReputationService(recorded.spec)
        other.restore(state)
        assert np.array_equal(other.reputations, service.reputations)
        assert other.events_applied == service.events_applied

    def test_from_checkpoint_rejects_simulation_kind(self, tmp_path):
        from repro.api import build_scenario

        spec = small_spec()
        scenario = build_scenario(spec)
        scenario.world.simulation.run_simulation_cycle()
        path = save_checkpoint(
            scenario.world.simulation,
            tmp_path / "sim.ckpt",
            build=spec.build_kwargs(),
            seed=spec.seed,
        )
        with pytest.raises(ValueError, match="not a service checkpoint"):
            ReputationService.from_checkpoint(path)

    def test_resume_scenario_rejects_service_kind(self, recorded, tmp_path):
        service = ReputationService(recorded.spec)
        service.serve_events(recorded.events[:10])
        path = service.save_snapshot(tmp_path / "svc.ckpt")
        with pytest.raises(ValueError, match="not a batch-simulation"):
            resume_scenario(path)

    def test_save_snapshot_needs_a_path(self, recorded):
        with pytest.raises(ValueError, match="snapshot path"):
            ReputationService(recorded.spec).save_snapshot()
