"""Tests for the fault-model parameters."""

import pytest

from repro.faults import FaultConfig


class TestValidation:
    def test_defaults_are_fault_free(self):
        config = FaultConfig()
        assert config.fault_free
        assert not config.churn_enabled
        assert not config.lossy

    @pytest.mark.parametrize(
        "field",
        [
            "peer_leave_rate",
            "peer_crash_rate",
            "peer_rejoin_rate",
            "manager_crash_rate",
            "manager_recovery_rate",
            "message_loss_rate",
            "message_delay_rate",
            "offline_decay",
        ],
    )
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ValueError):
            FaultConfig(**{field: 1.5})
        with pytest.raises(ValueError):
            FaultConfig(**{field: -0.1})

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            FaultConfig(max_retries=-1)

    def test_rejects_cap_below_base(self):
        with pytest.raises(ValueError):
            FaultConfig(backoff_base=4.0, backoff_cap=2.0)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            FaultConfig(timeout_budget=0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FaultConfig().message_loss_rate = 0.5


class TestFlags:
    def test_loss_makes_lossy(self):
        assert FaultConfig(message_loss_rate=0.1).lossy
        assert not FaultConfig(message_loss_rate=0.1).fault_free

    def test_delay_alone_makes_lossy(self):
        assert FaultConfig(message_delay_rate=0.1).lossy

    def test_churn_flag(self):
        assert FaultConfig(peer_leave_rate=0.1).churn_enabled
        assert FaultConfig(peer_crash_rate=0.1).churn_enabled
        # Rejoins alone cannot take anyone down.
        assert not FaultConfig(peer_rejoin_rate=0.5).churn_enabled

    def test_rejoin_rate_alone_keeps_fault_free(self):
        """With nobody ever leaving, a rejoin rate can never fire."""
        assert FaultConfig(peer_rejoin_rate=0.9).fault_free
