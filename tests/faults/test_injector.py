"""Tests for the fault injector's liveness bookkeeping."""

import numpy as np
import pytest

from repro.faults import (
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
)
from repro.utils.rng import spawn_rng

N = 8


def scripted_injector(events, manager_ids=(0, 1, 2)):
    return FaultInjector(
        N, manager_ids, schedule=FaultSchedule.scripted(events)
    )


class TestConstruction:
    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            FaultInjector(0)

    def test_everyone_starts_alive(self):
        injector = FaultInjector(N, (0, 1))
        assert injector.peers_online == N
        assert not injector.any_offline
        assert injector.managers_up_count == 2
        assert injector.down_managers() == frozenset()

    def test_config_inherited_from_schedule(self):
        config = FaultConfig(offline_decay=0.5)
        schedule = FaultSchedule(config)
        assert FaultInjector(N, schedule=schedule).config is config

    def test_register_managers_idempotent(self):
        injector = FaultInjector(N, (0,))
        injector.fail_manager(0)
        injector.register_managers([0, 1])
        assert not injector.manager_up(0)  # re-registering keeps state
        assert injector.manager_up(1)

    def test_online_mask_is_read_only(self):
        injector = FaultInjector(N)
        with pytest.raises(ValueError):
            injector.online_mask[0] = False


class TestAdvance:
    def test_applies_scripted_events_in_order(self):
        injector = scripted_injector(
            [
                FaultEvent(0, FaultKind.PEER_CRASH, 4),
                FaultEvent(1, FaultKind.MANAGER_CRASH, 2),
                FaultEvent(2, FaultKind.PEER_JOIN, 4),
                FaultEvent(2, FaultKind.MANAGER_RECOVER, 2),
            ]
        )
        assert [e.subject for e in injector.advance()] == [4]
        assert not injector.peer_online(4)
        assert injector.offline_nodes().tolist() == [4]
        injector.advance()
        assert injector.down_managers() == frozenset({2})
        assert injector.managers_up_count == 2
        injector.advance()
        assert injector.peer_online(4)
        assert injector.manager_up(2)
        assert injector.cycle == 3

    def test_noop_events_filtered(self):
        """Redundant events (already in target state) neither apply nor log."""
        injector = scripted_injector(
            [
                FaultEvent(0, FaultKind.PEER_JOIN, 1),  # already online
                FaultEvent(0, FaultKind.MANAGER_RECOVER, 0),  # already up
            ]
        )
        assert injector.advance() == []
        assert injector.metrics.event_log == ()

    def test_event_log_records_applied_events(self):
        injector = scripted_injector([FaultEvent(0, FaultKind.PEER_LEAVE, 2)])
        injector.advance()
        log = injector.metrics.event_log
        assert len(log) == 1
        assert log[0].kind is FaultKind.PEER_LEAVE
        assert injector.metrics.events["peer_leave"] == 1

    def test_unknown_manager_rejected(self):
        injector = scripted_injector([FaultEvent(0, FaultKind.MANAGER_CRASH, 9)])
        with pytest.raises(KeyError):
            injector.advance()

    def test_peer_out_of_range_rejected(self):
        injector = scripted_injector([FaultEvent(0, FaultKind.PEER_CRASH, N)])
        with pytest.raises(IndexError):
            injector.advance()


class TestManualControls:
    def test_fail_and_restore_peer(self):
        injector = FaultInjector(N)
        injector.fail_peer(3)
        assert not injector.peer_online(3)
        injector.restore_peer(3)
        assert injector.peer_online(3)
        kinds = [e.kind for e in injector.metrics.event_log]
        assert kinds == [FaultKind.PEER_LEAVE, FaultKind.PEER_JOIN]

    def test_crash_flag_changes_event_kind(self):
        injector = FaultInjector(N)
        injector.fail_peer(3, crash=True)
        assert injector.metrics.event_log[0].kind is FaultKind.PEER_CRASH

    def test_fail_and_restore_manager(self):
        injector = FaultInjector(N, (0, 1))
        injector.fail_manager(1)
        assert injector.down_managers() == frozenset({1})
        injector.restore_manager(1)
        assert injector.down_managers() == frozenset()


class TestStochasticLifecycle:
    def test_churn_reaches_steady_state_not_extinction(self):
        """With leave and rejoin balanced, the population oscillates
        instead of draining to zero."""
        injector = FaultInjector(
            64,
            config=FaultConfig(peer_leave_rate=0.2, peer_rejoin_rate=0.5),
            rng=spawn_rng(5, 0),
        )
        counts = []
        for _ in range(30):
            injector.advance()
            counts.append(injector.peers_online)
        assert min(counts) > 0
        assert min(counts) < 64  # churn actually happened

    def test_zero_rate_advance_is_inert(self):
        injector = FaultInjector(N, (0, 1), config=FaultConfig())
        for _ in range(5):
            assert injector.advance() == []
        assert injector.peers_online == N
        assert injector.managers_up_count == 2
        assert np.array_equal(injector.online_mask, np.ones(N, dtype=bool))


class TestPartitionLifecycle:
    def test_starts_whole(self):
        injector = FaultInjector(N, (0, 1))
        assert not injector.partition_active
        assert injector.partition_mask is None
        assert injector.same_side(0, N - 1)
        assert injector.manager_side(0) is None

    def test_explicit_side_mask(self):
        injector = FaultInjector(N, (0, 1))
        side = np.zeros(N, dtype=bool)
        side[: N // 2] = True
        injector.start_partition(side)
        assert injector.partition_active
        assert injector.same_side(0, 1)
        assert not injector.same_side(0, N - 1)
        assert injector.manager_side(0) is True
        mask = injector.partition_mask
        assert not mask.flags.writeable

    def test_degenerate_side_mask_rejected(self):
        injector = FaultInjector(N, (0, 1))
        with pytest.raises(ValueError, match="split"):
            injector.start_partition(np.ones(N, dtype=bool))
        with pytest.raises(ValueError, match="shape"):
            injector.start_partition(np.zeros(N + 1, dtype=bool))

    def test_drawn_side_splits_nodes(self):
        config = FaultConfig(partition_fraction=0.5)
        injector = FaultInjector(N, (0, 1), config=config, rng=spawn_rng(5, 0))
        injector.start_partition()
        mask = injector.partition_mask
        assert 0 < mask.sum() < N

    def test_heal_restores_whole_network(self):
        injector = FaultInjector(N, (0, 1), rng=spawn_rng(5, 0))
        injector.start_partition()
        injector.heal_partition()
        assert not injector.partition_active
        assert injector.same_side(0, N - 1)

    def test_double_start_is_a_noop(self):
        injector = FaultInjector(N, (0, 1), rng=spawn_rng(5, 0))
        injector.start_partition()
        mask = injector.partition_mask.copy()
        injector.start_partition()
        assert np.array_equal(injector.partition_mask, mask)

    def test_auto_heal_after_delay(self):
        injector = FaultInjector(N, (0, 1), rng=spawn_rng(5, 0))
        injector.start_partition(heal_after=2)
        injector.advance()  # cycle 0: still partitioned
        injector.advance()  # cycle 1: still partitioned
        assert injector.partition_active
        injector.advance()  # cycle 2 >= heal_at: heals before the draws
        assert not injector.partition_active

    def test_partition_blocks_counted_via_metrics(self):
        injector = FaultInjector(N, (0, 1), rng=spawn_rng(5, 0))
        injector.start_partition()
        injector.metrics.record_partition_block()
        assert injector.metrics.partition_blocks == 1


class TestByzantineLifecycle:
    def test_starts_honest(self):
        injector = FaultInjector(N, (0, 1, 2))
        assert injector.byzantine_managers() == frozenset()
        assert not injector.manager_byzantine(1)

    def test_turn_and_heal(self):
        injector = FaultInjector(N, (0, 1, 2))
        injector.make_byzantine(1)
        assert injector.manager_byzantine(1)
        assert injector.byzantine_managers() == frozenset({1})
        injector.heal_byzantine(1)
        assert injector.byzantine_managers() == frozenset()

    def test_unknown_manager_rejected(self):
        injector = FaultInjector(N, (0, 1))
        with pytest.raises(KeyError):
            injector.make_byzantine(7)

    def test_byzantine_manager_stays_up(self):
        # Byzantine is a *lying* manager, not a crashed one.
        injector = FaultInjector(N, (0, 1))
        injector.make_byzantine(0)
        assert injector.manager_up(0)


class TestStateRoundTrip:
    def _mutated_injector(self):
        injector = FaultInjector(
            N,
            (0, 1, 2),
            config=FaultConfig(message_loss_rate=0.5, retry_budget=20),
            rng=spawn_rng(9, 0),
        )
        injector.fail_peer(3)
        injector.fail_manager(2)
        injector.make_byzantine(1)
        injector.start_partition(heal_after=4)
        injector.transport.send("info_request")
        injector.advance()
        return injector

    def test_state_dict_restores_everything(self):
        source = self._mutated_injector()
        clone = FaultInjector(
            N,
            (0, 1, 2),
            config=FaultConfig(message_loss_rate=0.5, retry_budget=20),
            rng=spawn_rng(1234, 5),  # deliberately different stream
        )
        clone.restore_state(source.state_dict())
        assert clone.cycle == source.cycle
        assert np.array_equal(clone.online_mask, source.online_mask)
        assert clone.down_managers() == source.down_managers()
        assert clone.byzantine_managers() == source.byzantine_managers()
        assert np.array_equal(clone.partition_mask, source.partition_mask)
        assert (
            clone.transport.retry_budget.spent
            == source.transport.retry_budget.spent
        )
        # The restored RNG stream continues identically.
        assert clone._rng.random() == source._rng.random()

    def test_restored_auto_heal_still_fires(self):
        source = self._mutated_injector()  # heal_after=4, one advance done
        clone = FaultInjector(
            N,
            (0, 1, 2),
            config=FaultConfig(message_loss_rate=0.5, retry_budget=20),
            rng=spawn_rng(9, 0),
        )
        clone.restore_state(source.state_dict())
        # heal_at = 4; both are at cycle 1, so 4 more advances reach it.
        for injector in (source, clone):
            for _ in range(4):
                injector.advance()
        assert not source.partition_active
        assert not clone.partition_active

    def test_mismatched_shape_rejected(self):
        state = self._mutated_injector().state_dict()
        other = FaultInjector(N + 1, (0, 1, 2), rng=spawn_rng(9, 0))
        with pytest.raises(ValueError, match="shape"):
            other.restore_state(state)

    def test_rng_state_without_rng_rejected(self):
        state = self._mutated_injector().state_dict()
        state["partition_side"] = None  # avoid unrelated paths
        other = FaultInjector(N, (0, 1, 2))
        with pytest.raises(ValueError, match="rng"):
            other.restore_state(state)
