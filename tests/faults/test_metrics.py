"""Tests for the shared fault-metrics sink."""

import pytest

from repro.faults import FaultEvent, FaultKind, FaultMetrics


class TestCounters:
    def test_starts_empty(self):
        metrics = FaultMetrics()
        assert metrics.summary() == {
            "events": 0,
            "attempts": 0,
            "losses": 0,
            "delays": 0,
            "retries": 0,
            "timeouts": 0,
            "fallbacks": 0,
            "reassignments": 0,
            "duplicates": 0,
            "reorders": 0,
            "partition_blocks": 0,
            "byzantine_corruptions": 0,
        }

    def test_records_by_kind(self):
        metrics = FaultMetrics()
        metrics.record_attempt("info_request")
        metrics.record_attempt("info_request")
        metrics.record_loss("info_request")
        metrics.record_timeout("rating_report")
        assert metrics.attempts["info_request"] == 2
        assert metrics.total_losses == 1
        assert metrics.timeouts["rating_report"] == 1

    def test_retries_accumulate(self):
        metrics = FaultMetrics()
        metrics.record_retries(2)
        metrics.record_retries(0)
        metrics.record_retries(3)
        assert metrics.retries == 5

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            FaultMetrics().record_retries(-1)

    def test_reassignments_count_nodes(self):
        metrics = FaultMetrics()
        metrics.record_reassignment(7)
        metrics.record_reassignment()
        assert metrics.reassignments == 8
        with pytest.raises(ValueError):
            metrics.record_reassignment(-1)

    def test_fallbacks(self):
        metrics = FaultMetrics()
        metrics.record_fallback()
        assert metrics.fallbacks == 1


class TestSeries:
    def test_snapshot_rows_are_cumulative(self):
        metrics = FaultMetrics()
        metrics.record_loss("x")
        metrics.snapshot_cycle(1, peers_online=10, managers_up=3)
        metrics.record_loss("x")
        metrics.record_fallback()
        metrics.snapshot_cycle(2, peers_online=9, managers_up=2)
        rows = metrics.series()
        assert len(rows) == 2
        assert rows[0]["losses"] == 1.0
        assert rows[1]["losses"] == 2.0
        assert rows[1]["fallbacks"] == 1.0
        assert rows[1]["peers_online"] == 9.0
        assert rows[1]["managers_up"] == 2.0

    def test_reset_clears_everything(self):
        metrics = FaultMetrics()
        metrics.record_event(FaultEvent(0, FaultKind.PEER_LEAVE, 1))
        metrics.record_loss("x")
        metrics.record_retries(2)
        metrics.record_fallback()
        metrics.record_reassignment()
        metrics.snapshot_cycle(1, peers_online=5, managers_up=1)
        metrics.reset()
        assert metrics.summary()["events"] == 0
        assert metrics.series() == ()
        assert metrics.event_log == ()
