"""Tests for the lossy transport and its retry policy."""

import pytest

from repro.faults import DeliveryReport, FaultConfig, FaultMetrics, UnreliableTransport
from repro.utils.rng import spawn_rng


class TestFaultFreePath:
    def test_no_rng_needed(self):
        transport = UnreliableTransport(FaultConfig())
        report = transport.send("rating_report")
        assert report == DeliveryReport(delivered=True, attempts=1, latency=0.0)
        assert report.retries == 0

    def test_attempts_counted(self):
        metrics = FaultMetrics()
        transport = UnreliableTransport(FaultConfig(), metrics=metrics)
        for _ in range(4):
            transport.send("info_request")
        assert metrics.attempts["info_request"] == 4
        assert metrics.total_losses == 0
        assert metrics.retries == 0

    def test_lossy_requires_rng(self):
        with pytest.raises(ValueError):
            UnreliableTransport(FaultConfig(message_loss_rate=0.5))


class TestLoss:
    def test_certain_loss_times_out(self):
        metrics = FaultMetrics()
        transport = UnreliableTransport(
            FaultConfig(message_loss_rate=1.0, max_retries=2, timeout_budget=100.0),
            spawn_rng(3, 0),
            metrics=metrics,
        )
        report = transport.send("info_request")
        assert not report.delivered
        assert report.attempts == 3  # 1 try + 2 retries
        assert metrics.timeouts["info_request"] == 1
        assert metrics.losses["info_request"] == 3
        assert metrics.retries == 2

    def test_backoff_schedule_capped(self):
        transport = UnreliableTransport(
            FaultConfig(
                message_loss_rate=1.0,
                max_retries=4,
                backoff_base=1.0,
                backoff_cap=4.0,
                timeout_budget=1000.0,
            ),
            spawn_rng(3, 0),
        )
        report = transport.send("x")
        # Backoffs: 1 + 2 + 4 + 4 + 4 (cap at 4 from attempt 3 on).
        assert report.latency == pytest.approx(15.0)

    def test_budget_stops_retrying_early(self):
        transport = UnreliableTransport(
            FaultConfig(
                message_loss_rate=1.0,
                max_retries=10,
                backoff_base=2.0,
                backoff_cap=2.0,
                timeout_budget=5.0,
            ),
            spawn_rng(3, 0),
        )
        report = transport.send("x")
        assert not report.delivered
        # 2 + 2 = 4 <= 5 but 4 + 2 = 6 > 5: stops after the third attempt.
        assert report.attempts == 3

    def test_zero_loss_always_delivers(self):
        transport = UnreliableTransport(
            FaultConfig(message_loss_rate=0.0, message_delay_rate=0.5),
            spawn_rng(3, 0),
        )
        assert all(transport.send("x").delivered for _ in range(50))

    def test_moderate_loss_mostly_recovers(self):
        metrics = FaultMetrics()
        transport = UnreliableTransport(
            FaultConfig(message_loss_rate=0.3, max_retries=5, timeout_budget=100.0),
            spawn_rng(3, 0),
            metrics=metrics,
        )
        delivered = sum(transport.send("x").delivered for _ in range(200))
        assert delivered >= 195  # p(6 consecutive losses) = 0.3^6 ~ 7e-4
        assert metrics.retries > 0


class TestDelay:
    def test_delay_recorded_and_latency_positive(self):
        metrics = FaultMetrics()
        transport = UnreliableTransport(
            FaultConfig(message_delay_rate=1.0, mean_delay=2.0),
            spawn_rng(3, 0),
            metrics=metrics,
        )
        report = transport.send("x")
        assert report.delivered
        assert report.latency > 0.0
        assert metrics.delays["x"] == 1

    def test_late_delivery_is_a_timeout(self):
        """A response arriving past the budget counts as a timeout."""
        metrics = FaultMetrics()
        transport = UnreliableTransport(
            FaultConfig(
                message_delay_rate=1.0,
                mean_delay=100.0,
                max_retries=0,
                timeout_budget=0.001,
            ),
            spawn_rng(3, 0),
            metrics=metrics,
        )
        report = transport.send("x")
        assert not report.delivered
        assert metrics.total_timeouts == 1


class TestDuplicationAndReordering:
    def test_certain_duplication_flagged_and_counted(self):
        metrics = FaultMetrics()
        transport = UnreliableTransport(
            FaultConfig(message_duplicate_rate=1.0),
            spawn_rng(3, 0),
            metrics=metrics,
        )
        report = transport.send("rating_report")
        assert report.delivered
        assert report.duplicates == 1
        assert metrics.duplicates["rating_report"] == 1

    def test_certain_reordering_flagged_and_counted(self):
        metrics = FaultMetrics()
        transport = UnreliableTransport(
            FaultConfig(message_reorder_rate=1.0),
            spawn_rng(3, 0),
            metrics=metrics,
        )
        report = transport.send("rating_report")
        assert report.delivered
        assert report.reordered
        assert metrics.reorders["rating_report"] == 1

    def test_zero_rates_never_fire(self):
        transport = UnreliableTransport(
            FaultConfig(message_loss_rate=0.2), spawn_rng(3, 0)
        )
        reports = [transport.send("x") for _ in range(100)]
        assert all(r.duplicates == 0 and not r.reordered for r in reports)

    def test_dropped_message_is_never_duplicated(self):
        transport = UnreliableTransport(
            FaultConfig(
                message_loss_rate=1.0, message_duplicate_rate=1.0, max_retries=1
            ),
            spawn_rng(3, 0),
        )
        report = transport.send("x")
        assert not report.delivered and report.duplicates == 0


class TestDeterminism:
    def test_identical_seeds_identical_reports(self):
        """Drop/delay/duplicate decisions replay exactly under one seed."""
        config = FaultConfig(
            message_loss_rate=0.4,
            message_delay_rate=0.3,
            mean_delay=1.0,
            message_duplicate_rate=0.2,
            message_reorder_rate=0.2,
            max_retries=3,
            timeout_budget=50.0,
        )
        transports = [
            UnreliableTransport(config, spawn_rng(11, 0)) for _ in range(2)
        ]
        runs = [[t.send("x") for _ in range(120)] for t in transports]
        assert runs[0] == runs[1]
        assert any(r.attempts > 1 for r in runs[0])  # losses actually occurred
        assert any(r.duplicates for r in runs[0])

    def test_different_streams_differ(self):
        config = FaultConfig(message_loss_rate=0.4, timeout_budget=50.0)
        a = UnreliableTransport(config, spawn_rng(11, 0))
        b = UnreliableTransport(config, spawn_rng(11, 1))
        assert [a.send("x") for _ in range(60)] != [
            b.send("x") for _ in range(60)
        ]

    def test_state_round_trip_restores_budget(self):
        config = FaultConfig(message_loss_rate=1.0, max_retries=1, retry_budget=10)
        transport = UnreliableTransport(config, spawn_rng(11, 0))
        for _ in range(3):
            transport.send("x")
        clone = UnreliableTransport(config, spawn_rng(11, 0))
        clone.restore_state(transport.state_dict())
        assert clone.retry_budget.spent == transport.retry_budget.spent
