"""The degradation ladder's audited tiers: neutral damping and skip.

Builds one distributed SocialTrust world with observability attached and
drives the detector into the two lossy tiers of the
:class:`~repro.faults.policy.DegradationTier` ladder, asserting each
deferral shows up in the detector audit log and the metrics registry.
"""

import numpy as np
import pytest

from repro.core import DistributedSocialTrust
from repro.faults import FaultConfig, FaultInjector
from repro.obs import Observability
from repro.p2p import Population
from repro.reputation import EigenTrust
from repro.reputation.ledger import RatingLedger
from repro.social import InteractionLedger, InterestProfiles
from repro.social.generators import paper_social_network
from repro.utils.rng import spawn_rng

N = 20
N_MANAGERS = 4
PRETRUSTED = (0, 1)
COLLUDERS = tuple(range(2, 8))


class DegradationWorld:
    """Distributed system + injector + audit log, with enough collusion
    traffic that the detector always has findings to degrade."""

    def __init__(self, seed: int = 13) -> None:
        rng = spawn_rng(seed, 1)
        population = Population.build(
            N,
            rng,
            pretrusted_ids=PRETRUSTED,
            malicious_ids=COLLUDERS,
            n_interests=5,
            interests_per_node=(1, 4),
            malicious_authentic_prob=0.3,
        )
        network = paper_social_network(N, COLLUDERS, rng)
        self.interactions = InteractionLedger(N)
        profiles = InterestProfiles(N, 5)
        for spec in population:
            profiles.set_declared(spec.node_id, spec.interests)
        self.obs = Observability()
        self.injector = FaultInjector(N, config=FaultConfig())
        self.system = DistributedSocialTrust(
            EigenTrust(N, PRETRUSTED, pretrust_weight=0.05),
            network,
            self.interactions,
            profiles,
            n_managers=N_MANAGERS,
            injector=self.injector,
            observability=self.obs,
        )
        self.ledger = RatingLedger(N)

    def load_collusion_traffic(self) -> None:
        pairs = [
            (a, b)
            for i, a in enumerate(COLLUDERS)
            for b in COLLUDERS[i + 1 :]
        ]
        for a, b in pairs[:6]:
            for rater, ratee in ((a, b), (b, a)):
                self.ledger.record_batch(rater, ratee, 1.0, 8)
                self.interactions.record(rater, ratee, 8)
        for rater in range(N):
            ratee = (rater + 1) % N
            self.ledger.record_batch(rater, ratee, 1.0, 2)
            self.interactions.record(rater, ratee, 2)

    def flush(self) -> None:
        self.system.update(self.ledger.drain())


@pytest.fixture
def world():
    return DegradationWorld()


def test_all_managers_down_audits_every_finding_as_neutral(world):
    world.load_collusion_traffic()
    for manager_id in range(N_MANAGERS):
        world.injector.fail_manager(manager_id)
    world.flush()
    findings = world.system.last_detection.findings
    assert findings, "collusion traffic must produce findings"
    degraded = world.obs.audit.degraded()
    assert len(degraded) == len(findings)
    assert {e.decision for e in degraded} == {"degraded_neutral"}
    assert world.injector.metrics.fallbacks == len(findings)
    counter = world.obs.metrics.counter("manager.degraded.degraded_neutral")
    assert counter.value == len(findings)


def test_cross_partition_findings_audited_as_skipped(world):
    world.load_collusion_traffic()
    # Alternating side mask: managers 0/2 (peers 0, 2) end up on side A,
    # managers 1/3 on side B, so cross-manager findings cross the cut.
    side = np.zeros(N, dtype=bool)
    side[::2] = True
    world.injector.start_partition(side)
    world.flush()
    skipped = [
        e for e in world.obs.audit.degraded() if e.decision == "skipped"
    ]
    assert skipped, "some finding must straddle the partition"
    # A skipped judgement defers damping entirely: weight 1.0 applied.
    for event in skipped:
        assert event.weight == 1.0
    assert world.injector.metrics.partition_blocks >= len(skipped)
    counter = world.obs.metrics.counter("manager.degraded.skipped")
    assert counter.value == len(skipped)


def test_fault_free_flush_audits_no_degradation(world):
    world.load_collusion_traffic()
    world.flush()
    assert world.system.last_detection.findings
    assert world.obs.audit.degraded() == ()
