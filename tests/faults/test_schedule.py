"""Tests for fault schedules (scripted and stochastic)."""

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultEvent, FaultKind, FaultSchedule
from repro.utils.rng import spawn_rng


def liveness(n=6):
    return np.ones(n, dtype=bool), {0: True, 1: True}


class TestFaultKind:
    def test_peer_kinds(self):
        assert FaultKind.PEER_LEAVE.is_peer
        assert FaultKind.PEER_CRASH.is_peer
        assert FaultKind.PEER_JOIN.is_peer
        assert not FaultKind.MANAGER_CRASH.is_peer

    def test_takes_down(self):
        assert FaultKind.PEER_LEAVE.takes_down
        assert FaultKind.MANAGER_CRASH.takes_down
        assert not FaultKind.PEER_JOIN.takes_down
        assert not FaultKind.MANAGER_RECOVER.takes_down


class TestFaultEvent:
    def test_rejects_negative_cycle(self):
        with pytest.raises(ValueError):
            FaultEvent(-1, FaultKind.PEER_LEAVE, 0)


class TestScripted:
    def test_replays_events_at_their_cycle(self):
        schedule = FaultSchedule.scripted(
            [
                FaultEvent(0, FaultKind.PEER_LEAVE, 3),
                FaultEvent(2, FaultKind.MANAGER_CRASH, 1),
                FaultEvent(2, FaultKind.PEER_JOIN, 3),
            ]
        )
        online, managers = liveness()
        assert schedule.is_scripted
        assert [e.subject for e in schedule.draw(0, online, managers)] == [3]
        assert schedule.draw(1, online, managers) == []
        assert len(schedule.draw(2, online, managers)) == 2

    def test_rejects_misfiled_event(self):
        with pytest.raises(ValueError):
            FaultSchedule(script={5: [FaultEvent(0, FaultKind.PEER_LEAVE, 1)]})

    def test_scripted_needs_no_rng(self):
        schedule = FaultSchedule.scripted([FaultEvent(0, FaultKind.PEER_CRASH, 0)])
        assert schedule.draw(0, *liveness())


class TestStochastic:
    def test_nonzero_rates_require_rng(self):
        with pytest.raises(ValueError):
            FaultSchedule(FaultConfig(peer_leave_rate=0.5))

    def test_fault_free_draws_nothing(self):
        schedule = FaultSchedule(FaultConfig())
        online, managers = liveness()
        for cycle in range(5):
            assert schedule.draw(cycle, online, managers) == []

    def test_same_seed_same_events(self):
        config = FaultConfig(
            peer_leave_rate=0.3, peer_crash_rate=0.2, manager_crash_rate=0.4
        )
        a = FaultSchedule(config, spawn_rng(7, 0))
        b = FaultSchedule(config, spawn_rng(7, 0))
        online, managers = liveness()
        for cycle in range(5):
            assert a.draw(cycle, online, managers) == b.draw(
                cycle, online, managers
            )

    def test_only_online_peers_leave(self):
        config = FaultConfig(peer_leave_rate=1.0)
        schedule = FaultSchedule(config, spawn_rng(7, 0))
        online, managers = liveness()
        online[2] = False
        events = schedule.draw(0, online, managers)
        assert all(e.subject != 2 for e in events)
        assert len(events) == int(online.sum())

    def test_only_offline_peers_rejoin(self):
        config = FaultConfig(peer_rejoin_rate=1.0)
        schedule = FaultSchedule(config, spawn_rng(7, 0))
        online, managers = liveness()
        online[:] = False
        events = schedule.draw(0, online, managers)
        assert {e.kind for e in events} == {FaultKind.PEER_JOIN}
        assert len(events) == online.size

    def test_down_managers_can_only_recover(self):
        config = FaultConfig(manager_crash_rate=1.0, manager_recovery_rate=1.0)
        schedule = FaultSchedule(config, spawn_rng(7, 0))
        online, _ = liveness()
        events = schedule.draw(0, online, {0: True, 1: False})
        kinds = {e.subject: e.kind for e in events}
        assert kinds[0] is FaultKind.MANAGER_CRASH
        assert kinds[1] is FaultKind.MANAGER_RECOVER

    def test_crash_takes_priority_over_leave_in_one_draw(self):
        """One uniform draw per peer: crash band first, then leave band."""
        config = FaultConfig(peer_crash_rate=1.0, peer_leave_rate=0.0)
        schedule = FaultSchedule(config, spawn_rng(7, 0))
        online, managers = liveness()
        events = schedule.draw(0, online, managers)
        assert {e.kind for e in events} == {FaultKind.PEER_CRASH}
