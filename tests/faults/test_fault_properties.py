"""Property-style edge-case tests for the fault layer: degenerate
transports and schedules, scripted replay, and total manager loss."""

import numpy as np
import pytest

from repro.faults import (
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    UnreliableTransport,
)
from repro.utils.rng import spawn_rng


class TestTransportEdgeCases:
    def test_zero_loss_is_the_identity_channel(self):
        transport = UnreliableTransport(FaultConfig())
        for _ in range(25):
            report = transport.send("rating_report")
            assert report.delivered
            assert report.attempts == 1
            assert report.retries == 0
            assert report.latency == 0.0
        assert transport.metrics.attempts["rating_report"] == 25
        assert transport.metrics.timeouts["rating_report"] == 0

    def test_lossy_without_rng_rejected(self):
        with pytest.raises(ValueError, match="rng"):
            UnreliableTransport(FaultConfig(message_loss_rate=0.5))

    def test_total_loss_exhausts_every_retry(self):
        config = FaultConfig(
            message_loss_rate=1.0,
            max_retries=2,
            backoff_base=0.1,
            backoff_cap=0.1,
            timeout_budget=1000.0,
        )
        transport = UnreliableTransport(config, spawn_rng(0, 1))
        report = transport.send("query")
        assert not report.delivered
        assert report.attempts == config.max_retries + 1
        assert report.latency == pytest.approx(0.3)
        assert transport.metrics.timeouts["query"] == 1

    def test_exhausted_budget_stops_before_retry_cap(self):
        config = FaultConfig(
            message_loss_rate=1.0,
            max_retries=10,
            backoff_base=1.0,
            backoff_cap=1.0,
            timeout_budget=0.5,
        )
        transport = UnreliableTransport(config, spawn_rng(0, 1))
        report = transport.send("query")
        assert not report.delivered
        assert report.attempts == 1

    @pytest.mark.parametrize("loss_rate", [0.1, 0.5, 0.9])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reports_stay_within_policy_bounds(self, loss_rate, seed):
        config = FaultConfig(message_loss_rate=loss_rate, max_retries=3)
        transport = UnreliableTransport(config, spawn_rng(seed, 1))
        total_attempts = 0
        for _ in range(40):
            report = transport.send("probe")
            assert 1 <= report.attempts <= config.max_retries + 1
            assert report.latency >= 0.0
            if report.delivered:
                assert report.latency <= config.timeout_budget
            total_attempts += report.attempts
        assert transport.metrics.attempts["probe"] == total_attempts


class TestScheduleEdgeCases:
    def _liveness(self, n=6):
        return np.ones(n, dtype=bool), {0: True, 1: True}

    def test_empty_script_draws_nothing_forever(self):
        schedule = FaultSchedule.scripted([])
        online, managers = self._liveness()
        assert schedule.is_scripted
        for cycle in range(10):
            assert schedule.draw(cycle, online, managers) == []

    def test_fault_free_stochastic_needs_no_rng(self):
        schedule = FaultSchedule(FaultConfig())
        online, managers = self._liveness()
        assert schedule.draw(0, online, managers) == []

    def test_nonzero_rates_without_rng_rejected(self):
        with pytest.raises(ValueError, match="rng"):
            FaultSchedule(FaultConfig(peer_leave_rate=0.1))

    def test_scripted_replay_transitions_injector_masks(self):
        events = [
            FaultEvent(0, FaultKind.PEER_LEAVE, 3),
            FaultEvent(1, FaultKind.MANAGER_CRASH, 1),
            FaultEvent(2, FaultKind.PEER_JOIN, 3),
            FaultEvent(2, FaultKind.MANAGER_RECOVER, 1),
        ]
        injector = FaultInjector(
            6, manager_ids=(0, 1), schedule=FaultSchedule.scripted(events)
        )
        injector.advance()  # cycle 0
        assert not injector.peer_online(3)
        assert injector.down_managers() == frozenset()
        injector.advance()  # cycle 1
        assert injector.down_managers() == frozenset({1})
        injector.advance()  # cycle 2
        assert injector.peer_online(3)
        assert injector.down_managers() == frozenset()
        assert bool(injector.online_mask.all())


class TestAllManagersDown:
    def test_failover_with_every_successor_dead(self):
        from repro.qa.fuzz import ManagerFuzzHarness

        harness = ManagerFuzzHarness(seed=13)
        # Enough collusion traffic that the detector has findings to damp.
        for pair in range(6):
            harness.collusion_burst(pair, 8)
        for rater in range(harness.n_nodes):
            harness.add_burst(rater, rater + 1, positive=True, count=2)
        for manager_id in range(harness.n_managers):
            harness.crash_manager(manager_id)
        assert harness.distributed.effective_manager_of(0) is None

        fallbacks_before = harness.injector.metrics.fallbacks
        # flush_interval itself asserts fallbacks == before + n_findings
        # when every manager is down.
        harness.flush_interval()
        assert harness.diverged
        findings = harness.distributed.last_detection.findings
        assert findings, "collusion bursts should produce findings"
        assert (
            harness.injector.metrics.fallbacks
            == fallbacks_before + len(findings)
        )
        # Recovery restores normal (non-fallback) operation.
        for manager_id in range(harness.n_managers):
            harness.recover_manager(manager_id)
        assert harness.distributed.effective_manager_of(0) is not None
        harness.add_burst(4, 5, positive=True, count=1)
        harness.flush_interval()
        assert harness.injector.metrics.fallbacks == fallbacks_before + len(
            findings
        )
