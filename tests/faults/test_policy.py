"""Unit tests for the unified retry policy and retry budget."""

import pytest

from repro.faults import FaultConfig, RetryBudget, RetryPolicy
from repro.utils.rng import spawn_rng


class TestRetryPolicyValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_cap_below_base_rejected(self):
        with pytest.raises(ValueError, match="backoff_cap"):
            RetryPolicy(backoff_base=4.0, backoff_cap=2.0)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            RetryPolicy(deadline=0.0)

    def test_jitter_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)


class TestBackoff:
    def test_doubles_then_caps(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=8.0)
        waits = [policy.backoff(attempt) for attempt in range(1, 7)]
        assert waits == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().backoff(0)

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            RetryPolicy(jitter=0.5).backoff(1)

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_base=2.0, jitter=0.5)
        waits = [policy.backoff(1, spawn_rng(7, i)) for i in range(20)]
        assert all(2.0 <= w < 3.0 for w in waits)
        assert policy.backoff(1, spawn_rng(7, 0)) == waits[0]

    def test_zero_jitter_never_draws(self):
        # No rng passed: a draw attempt would raise.
        assert RetryPolicy(jitter=0.0).backoff(3) == 4.0


class TestAdmission:
    def test_retry_cap(self):
        policy = RetryPolicy(max_retries=2, deadline=1000.0)
        assert policy.admits_retry(2, 0.0)
        assert not policy.admits_retry(3, 0.0)

    def test_deadline(self):
        policy = RetryPolicy(max_retries=10, deadline=5.0)
        assert policy.admits_retry(1, 5.0)
        assert not policy.admits_retry(1, 5.1)
        assert policy.within_deadline(5.0)
        assert not policy.within_deadline(5.01)

    def test_from_config_mirrors_knobs(self):
        config = FaultConfig(
            max_retries=5,
            backoff_base=0.5,
            backoff_cap=4.0,
            timeout_budget=12.0,
            retry_jitter=0.25,
        )
        policy = RetryPolicy.from_config(config)
        assert policy == RetryPolicy(
            max_retries=5,
            backoff_base=0.5,
            backoff_cap=4.0,
            deadline=12.0,
            jitter=0.25,
        )


class TestRetryBudget:
    def test_unlimited_by_default(self):
        budget = RetryBudget()
        assert budget.limit is None and budget.remaining is None
        assert all(budget.acquire() for _ in range(100))
        assert budget.spent == 100

    def test_exhaustion(self):
        budget = RetryBudget(2)
        assert budget.acquire() and budget.acquire()
        assert not budget.acquire()
        assert budget.spent == 2 and budget.remaining == 0

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError, match="limit"):
            RetryBudget(-1)

    def test_state_round_trip(self):
        budget = RetryBudget(5)
        budget.acquire()
        budget.acquire()
        clone = RetryBudget()
        clone.restore_state(budget.state_dict())
        assert clone.limit == 5 and clone.spent == 2 and clone.remaining == 3
