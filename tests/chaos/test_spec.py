"""ChaosSpec validation, event compilation, and round-tripping."""

import pytest

from repro.chaos import ByzantineSpec, ChaosSpec, PartitionSpec
from repro.faults import FaultConfig, FaultKind, NETWORK_SUBJECT


class TestPartitionSpec:
    def test_events(self):
        spec = PartitionSpec(start_cycle=2, heal_cycle=5)
        events = spec.events()
        assert [(e.cycle, e.kind, e.subject) for e in events] == [
            (2, FaultKind.PARTITION_START, NETWORK_SUBJECT),
            (5, FaultKind.PARTITION_HEAL, NETWORK_SUBJECT),
        ]

    def test_heal_must_follow_start(self):
        with pytest.raises(ValueError, match="heal_cycle"):
            PartitionSpec(start_cycle=3, heal_cycle=3)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start_cycle"):
            PartitionSpec(start_cycle=-1, heal_cycle=2)


class TestByzantineSpec:
    def test_open_ended_window(self):
        spec = ByzantineSpec(manager_id=1, start_cycle=4)
        events = spec.events()
        assert len(events) == 1
        assert events[0].kind is FaultKind.MANAGER_BYZANTINE
        assert events[0].subject == 1

    def test_healing_window(self):
        spec = ByzantineSpec(manager_id=0, start_cycle=1, heal_cycle=6)
        kinds = [e.kind for e in spec.events()]
        assert kinds == [FaultKind.MANAGER_BYZANTINE, FaultKind.MANAGER_HEAL]

    def test_heal_before_start_rejected(self):
        with pytest.raises(ValueError, match="heal_cycle"):
            ByzantineSpec(manager_id=0, start_cycle=5, heal_cycle=5)


class TestChaosSpec:
    def test_events_sorted_by_cycle(self):
        spec = ChaosSpec(
            partitions=(PartitionSpec(4, 8),),
            byzantines=(ByzantineSpec(0, 1, 6),),
        )
        cycles = [e.cycle for e in spec.events()]
        assert cycles == sorted(cycles) == [1, 4, 6, 8]

    def test_overlapping_partitions_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            ChaosSpec(partitions=(PartitionSpec(1, 5), PartitionSpec(4, 8)))

    def test_back_to_back_partitions_allowed(self):
        spec = ChaosSpec(partitions=(PartitionSpec(1, 4), PartitionSpec(4, 7)))
        assert len(spec.events()) == 4

    def test_empty(self):
        assert ChaosSpec().empty
        assert not ChaosSpec(partitions=(PartitionSpec(0, 1),)).empty

    def test_to_schedule_is_scripted_and_keeps_config(self):
        config = FaultConfig(partition_fraction=0.25, byzantine_mode="stale")
        spec = ChaosSpec(partitions=(PartitionSpec(2, 4),))
        schedule = spec.to_schedule(config)
        assert schedule.is_scripted
        assert schedule.config.partition_fraction == 0.25
        assert schedule.config.byzantine_mode == "stale"
        import numpy as np

        events = schedule.draw(2, np.ones(4, dtype=bool), {})
        assert [e.kind for e in events] == [FaultKind.PARTITION_START]
        assert schedule.draw(3, np.ones(4, dtype=bool), {}) == []

    def test_dict_round_trip(self):
        spec = ChaosSpec(
            partitions=(PartitionSpec(1, 3),),
            byzantines=(ByzantineSpec(2, 1, None), ByzantineSpec(0, 2, 5)),
        )
        assert ChaosSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            ChaosSpec.from_dict({"partitions": [], "typo": []})
