"""Checkpoint codec, file format, and kill-and-resume bit-identity."""

import json

import numpy as np
import pytest

from repro.api import build_scenario
from repro.chaos import (
    CHECKPOINT_FORMAT_VERSION,
    decode_state,
    encode_state,
    load_checkpoint,
    resume_scenario,
    save_checkpoint,
)
from repro.qa.golden import diff_traces, record_cycles

CHAOS = {
    "partitions": [{"start_cycle": 1, "heal_cycle": 3}],
    "byzantines": [{"manager_id": 1, "start_cycle": 2, "heal_cycle": 4}],
}

BUILD = dict(
    n_nodes=16,
    n_pretrusted=2,
    n_colluders=4,
    n_interests=5,
    interests_per_node=(1, 3),
    capacity=8,
    query_cycles=3,
    simulation_cycles=6,
    collusion="pcm",
    use_socialtrust=True,
    n_managers=3,
    chaos=CHAOS,
)


class TestCodec:
    def test_ndarray_round_trip(self):
        arrays = [
            np.linspace(-1.5, 2.5, 12).reshape(3, 4),
            np.arange(7, dtype=np.int64),
            np.array([True, False, True]),
            np.array(3.25),  # 0-d
        ]
        for original in arrays:
            encoded = encode_state(original)
            assert isinstance(encoded, dict) and "__ndarray__" in encoded
            restored = decode_state(json.loads(json.dumps(encoded)))
            assert restored.dtype == original.dtype
            assert restored.shape == original.shape
            assert np.array_equal(restored, original)

    def test_decoded_array_is_writable(self):
        restored = decode_state(encode_state(np.zeros(3)))
        restored[0] = 1.0  # frombuffer alone would be read-only

    def test_non_finite_floats(self):
        payload = {"a": float("inf"), "b": float("-inf"), "c": float("nan")}
        restored = decode_state(json.loads(json.dumps(encode_state(payload))))
        assert restored["a"] == float("inf")
        assert restored["b"] == float("-inf")
        assert np.isnan(restored["c"])

    def test_numpy_scalars_become_python(self):
        encoded = encode_state(
            {"i": np.int64(4), "f": np.float64(0.5), "b": np.bool_(True)}
        )
        assert encoded == {"i": 4, "f": 0.5, "b": True}
        assert type(encoded["i"]) is int and type(encoded["b"]) is bool

    def test_nested_structures(self):
        state = {
            "rng": {"state": {"key": np.arange(4, dtype=np.uint64), "pos": 2}},
            "series": [np.ones(2), {"x": (1, 2)}],
        }
        restored = decode_state(json.loads(json.dumps(encode_state(state))))
        assert np.array_equal(restored["rng"]["state"]["key"], np.arange(4))
        assert restored["rng"]["state"]["pos"] == 2
        assert restored["series"][1]["x"] == [1, 2]


class TestSparseCodec:
    def test_csr_round_trip_is_exact(self):
        from scipy import sparse

        dense = np.array([[0.0, 1.5, 0.0], [0.0, 0.0, -2.25], [3.0, 0.0, 0.0]])
        original = sparse.csr_matrix(dense)
        encoded = encode_state({"cache": original})
        assert "__csr__" in encoded["cache"]
        restored = decode_state(json.loads(json.dumps(encoded)))["cache"]
        assert sparse.issparse(restored)
        assert restored.shape == original.shape
        assert np.array_equal(restored.data, original.data)
        assert np.array_equal(restored.indices, original.indices)
        assert np.array_equal(restored.indptr, original.indptr)

    def test_empty_and_explicit_zero_entries_survive(self):
        from scipy import sparse

        empty = sparse.csr_matrix((4, 4))
        with_zero = sparse.csr_matrix(
            (np.array([0.0, 2.0]), (np.array([0, 1]), np.array([1, 2]))),
            shape=(4, 4),
        )
        for original in (empty, with_zero):
            restored = decode_state(
                json.loads(json.dumps(encode_state(original)))
            )
            assert restored.nnz == original.nnz
            assert np.array_equal(restored.data, original.data)


class TestFileFormat:
    def _checkpoint(self, tmp_path, cycles=2):
        scenario = build_scenario(seed=3, **BUILD)
        sim = scenario.world.simulation
        for _ in range(cycles):
            sim.run_simulation_cycle()
        path = tmp_path / "ck" / "state.jsonl"
        save_checkpoint(sim, path, build=BUILD, seed=3)
        return path

    def test_save_load_round_trip(self, tmp_path):
        path = self._checkpoint(tmp_path)
        header, state = load_checkpoint(path)
        assert header["format_version"] == CHECKPOINT_FORMAT_VERSION
        assert header["seed"] == 3
        assert header["cycles_run"] == 2
        assert header["build"]["chaos"] == CHAOS
        assert state["cycles_run"] == 2
        assert state["injector"] is not None

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = self._checkpoint(tmp_path)
        assert [p.name for p in path.parent.iterdir()] == [path.name]

    def test_truncated_file_rejected(self, tmp_path):
        path = self._checkpoint(tmp_path)
        first_line = path.read_text().splitlines()[0]
        path.write_text(first_line + "\n")
        with pytest.raises(ValueError, match="expected 2"):
            load_checkpoint(path)

    def test_wrong_format_version_rejected(self, tmp_path):
        path = self._checkpoint(tmp_path)
        header_raw, state_raw = path.read_text().splitlines()
        header = json.loads(header_raw)
        header["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        path.write_text(json.dumps(header) + "\n" + state_raw + "\n")
        with pytest.raises(ValueError, match="format version"):
            load_checkpoint(path)

    def test_non_header_first_line_rejected(self, tmp_path):
        path = self._checkpoint(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text(lines[1] + "\n" + lines[0] + "\n")
        with pytest.raises(ValueError, match="not a checkpoint header"):
            load_checkpoint(path)

    def test_resume_needs_matching_injector(self, tmp_path):
        path = self._checkpoint(tmp_path)
        _, state = load_checkpoint(path)
        plain = dict(BUILD)
        del plain["chaos"], plain["n_managers"]
        bare = build_scenario(seed=3, **plain)
        with pytest.raises(ValueError, match="injector"):
            bare.world.simulation.resume(state)


def _kill_and_resume_trace(build, seed, total_cycles, kill_at, tmp_path):
    """Run ``kill_at`` cycles, checkpoint, resume from disk, run the rest."""
    scenario = build_scenario(seed=seed, **build)
    sim = scenario.world.simulation
    prefix = record_cycles(sim, kill_at)
    path = tmp_path / "kill.jsonl"
    save_checkpoint(sim, path, build=build, seed=seed)
    del scenario, sim  # the "crash"
    resumed = resume_scenario(path)
    resumed_sim = resumed.world.simulation
    assert resumed_sim.cycles_run == kill_at
    return prefix + record_cycles(resumed_sim, total_cycles - kill_at)


class TestKillAndResume:
    """Acceptance criterion: a resumed run is bit-identical to an
    uninterrupted one — pinned with a strict golden-trace diff.  The
    checkpoint is taken at cycle 2, *inside* the partition window, so the
    restored injector state (partition side, Byzantine flags, schedule
    position) is exercised, not just the simulator arrays."""

    def test_chaos_run_bit_identical(self, tmp_path):
        reference_sim = build_scenario(seed=3, **BUILD).world.simulation
        reference = record_cycles(reference_sim, 6)
        assert reference_sim.metrics.faults.partition_blocks > 0
        assert reference_sim.metrics.faults.byzantine_corruptions > 0

        resumed = _kill_and_resume_trace(BUILD, 3, 6, 2, tmp_path)
        diff = diff_traces(reference, resumed, mode="strict")
        assert diff.ok, diff.report()

    def test_sparse_coefficient_backend_bit_identical(self, tmp_path):
        # The sparse Ωc caches are CSR matrices; the checkpoint codec must
        # carry them exactly or the resumed incremental path diverges.
        build = dict(BUILD, socialtrust={"coefficient_backend": "sparse"})
        reference_sim = build_scenario(seed=7, **build).world.simulation
        reference = record_cycles(reference_sim, 6)

        resumed = _kill_and_resume_trace(build, 7, 6, 2, tmp_path)
        diff = diff_traces(reference, resumed, mode="strict")
        assert diff.ok, diff.report()

    def test_gossip_backend_bit_identical(self, tmp_path):
        # GossipTrust keeps an internal RNG — the checkpoint must carry it.
        build = dict(BUILD, system="gossip", use_socialtrust=None)
        del build["n_managers"]
        build["chaos"] = {"partitions": CHAOS["partitions"], "byzantines": []}
        reference_sim = build_scenario(seed=5, **build).world.simulation
        reference = record_cycles(reference_sim, 6)

        resumed = _kill_and_resume_trace(build, 5, 6, 3, tmp_path)
        diff = diff_traces(reference, resumed, mode="strict")
        assert diff.ok, diff.report()
