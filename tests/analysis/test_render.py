"""Tests for ASCII rendering helpers."""

import numpy as np
import pytest

from repro.analysis.render import bar_chart, distribution_panel, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_input_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(line) == sorted(line)

    def test_flat_input(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_downsampling(self):
        line = sparkline(np.arange(100), width=10)
        assert len(line) == 10

    def test_extremes_use_full_range(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestBarChart:
    def test_rows_and_values(self):
        out = bar_chart({"a": 1.0, "b": 0.5})
        lines = out.splitlines()
        assert len(lines) == 2
        assert "1.0000" in lines[0]
        assert lines[0].count("#") > lines[1].count("#")

    def test_scaled_to_width(self):
        out = bar_chart({"x": 2.0}, width=10)
        assert out.count("#") == 10

    def test_zero_values(self):
        out = bar_chart({"x": 0.0, "y": 0.0})
        assert "#" not in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestDistributionPanel:
    def test_groups_rendered(self):
        reps = np.linspace(0, 1, 10)
        panel = distribution_panel(
            reps, {"colluders": [0, 1, 2], "normal": list(range(3, 10))}
        )
        lines = panel.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("colluders")
        assert "mean=" in lines[0] and "max=" in lines[1]

    def test_empty_group_skipped(self):
        reps = np.ones(4)
        panel = distribution_panel(reps, {"a": [0, 1], "b": []})
        assert len(panel.splitlines()) == 1

    def test_no_groups_rejected(self):
        with pytest.raises(ValueError):
            distribution_panel(np.ones(3), {})
