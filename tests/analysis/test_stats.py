"""Tests for statistics helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import (
    ecdf,
    paper_correlation,
    pearson_correlation,
    percentile_summary,
)


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 3 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_input_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.random(50)
        y = rng.random(50)
        assert pearson_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.arange(3.0), np.arange(4.0))

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.array([1.0]), np.array([2.0]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones((2, 2)), np.ones((2, 2)))


class TestPaperCorrelation:
    def test_is_squared_pearson(self):
        rng = np.random.default_rng(1)
        x = rng.random(40)
        y = 2 * x + rng.random(40) * 0.1
        r = pearson_correlation(x, y)
        assert paper_correlation(x, y) == pytest.approx(r * r)

    def test_sign_insensitive(self):
        x = np.arange(10.0)
        assert paper_correlation(x, -x) == pytest.approx(1.0)

    @given(
        data=st.lists(
            st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
            min_size=2,
            max_size=50,
        )
    )
    def test_in_unit_interval(self, data):
        x = np.array([d[0] for d in data])
        y = np.array([d[1] for d in data])
        assert 0.0 <= paper_correlation(x, y) <= 1.0 + 1e-9


class TestEcdf:
    def test_sorted_output(self):
        v, p = ecdf(np.array([3.0, 1.0, 2.0]))
        assert np.array_equal(v, [1.0, 2.0, 3.0])
        assert np.allclose(p, [1 / 3, 2 / 3, 1.0])

    def test_last_probability_one(self):
        _, p = ecdf(np.random.default_rng(0).random(17))
        assert p[-1] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ecdf(np.array([]))

    @given(values=st.lists(st.floats(-10, 10), min_size=1, max_size=40))
    def test_monotone(self, values):
        v, p = ecdf(np.array(values))
        assert np.all(np.diff(v) >= 0)
        assert np.all(np.diff(p) > 0)


class TestHillTailExponent:
    def test_recovers_pareto_exponent(self):
        rng = np.random.default_rng(7)
        alpha = 2.0
        samples = (1.0 / rng.random(50000)) ** (1.0 / alpha)  # Pareto(alpha)
        from repro.analysis.stats import hill_tail_exponent

        estimate = hill_tail_exponent(samples, tail_fraction=0.05)
        assert abs(estimate - alpha) < 0.3

    def test_heavier_tail_smaller_alpha(self):
        from repro.analysis.stats import hill_tail_exponent

        rng = np.random.default_rng(8)
        heavy = (1.0 / rng.random(20000)) ** (1.0 / 1.5)
        light = (1.0 / rng.random(20000)) ** (1.0 / 3.0)
        assert hill_tail_exponent(heavy) < hill_tail_exponent(light)

    def test_constant_tail_infinite(self):
        from repro.analysis.stats import hill_tail_exponent

        assert hill_tail_exponent(np.ones(100)) == float("inf")

    def test_rejects_tiny_samples(self):
        from repro.analysis.stats import hill_tail_exponent

        with pytest.raises(ValueError):
            hill_tail_exponent(np.array([1.0, 2.0]))

    def test_rejects_bad_fraction(self):
        from repro.analysis.stats import hill_tail_exponent

        with pytest.raises(ValueError):
            hill_tail_exponent(np.arange(1, 100, dtype=float), tail_fraction=0.0)

    def test_synthetic_trace_reputations_heavy_tailed(self):
        """The marketplace's reputation distribution has the heavy tail the
        paper's log-log Fig. 1 rests on."""
        from repro.analysis.stats import hill_tail_exponent
        from repro.trace import MarketplaceConfig, generate_trace

        trace = generate_trace(
            MarketplaceConfig(n_users=800, n_months=10), seed=4
        )
        alpha = hill_tail_exponent(trace.reputations(), tail_fraction=0.1)
        assert alpha < 6.0  # heavy-ish tail; exponential data gives >> 10


class TestPercentileSummary:
    def test_ordering(self):
        s = percentile_summary(np.random.default_rng(2).random(200))
        assert s.p01 <= s.median <= s.p99

    def test_constant(self):
        s = percentile_summary(np.full(10, 3.0))
        assert s.p01 == s.median == s.p99 == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_summary(np.array([]))
