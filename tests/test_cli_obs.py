"""The telemetry CLI surface: `serve --metrics/--health-report` and the
`obs report/health/top/export` subcommand group."""

import json

import pytest

from repro.cli import EXIT_CONFIG, EXIT_FAILURE, EXIT_OK, main
from repro.obs import MetricsRegistry, TelemetrySink, parse_prometheus, read_telemetry

SMALL = [
    "--nodes", "20", "--pretrusted", "2", "--colluders", "4",
    "--seed", "11", "--cycles", "2",
]


@pytest.fixture(scope="module")
def recorded_stream(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "events.jsonl"
    assert main(["serve", *SMALL, "--record", str(path)]) == EXIT_OK
    return path


@pytest.fixture(scope="module")
def telemetry_series(recorded_stream, tmp_path_factory):
    """One serve run with --metrics/--health-report, shared by obs tests."""
    out_dir = tmp_path_factory.mktemp("telemetry")
    metrics = out_dir / "telemetry.jsonl"
    health = out_dir / "health.json"
    code = main(
        ["serve", "--events", str(recorded_stream),
         "--metrics", str(metrics), "--health-report", str(health)]
    )
    assert code == EXIT_OK
    return metrics, health


@pytest.fixture(scope="module")
def flooded_series(tmp_path_factory):
    """A hand-built telemetry series whose flood share breaches and heals."""
    path = tmp_path_factory.mktemp("flood") / "telemetry.jsonl"
    reg = MetricsRegistry()
    flood = reg.gauge("serve.flood.top_rater_share")
    with TelemetrySink(path) as sink:
        for interval, share in enumerate((0.1, 0.9, 0.9, 0.9, 0.1, 0.1, 0.1)):
            flood.set(share)
            sink.emit(reg, interval=interval)
    return path


class TestServeTelemetryFlags:
    def test_metrics_every_must_be_positive(self, tmp_path, capsys):
        code = main(
            ["serve", *SMALL, "--events", "-",
             "--metrics", str(tmp_path / "t.jsonl"), "--metrics-every", "0"]
        )
        assert code == EXIT_CONFIG
        assert "--metrics-every must be >= 1" in capsys.readouterr().err

    def test_metrics_every_requires_metrics(self, capsys):
        code = main(["serve", *SMALL, "--events", "-", "--metrics-every", "2"])
        assert code == EXIT_CONFIG
        assert "--metrics-every requires --metrics" in capsys.readouterr().err

    def test_stream_writes_watermark_aligned_series(
        self, telemetry_series, capsys
    ):
        metrics, _ = telemetry_series
        events = read_telemetry(metrics)
        # The recorded scenario runs 2 cycles -> one snapshot per watermark.
        assert [e["interval"] for e in events] == [1, 2]
        for event in events:
            assert event["metrics"]["serve.events.watermark"]["value"] == float(
                event["interval"]
            )

    def test_stream_writes_health_report(self, telemetry_series):
        _, health = telemetry_series
        report = json.loads(health.read_text())
        assert report["state"] == "ok"
        assert report["intervals_observed"] == 2
        assert {r["name"] for r in report["rules"]} >= {"query-p99", "flood-share"}

    def test_metrics_every_subsamples(self, recorded_stream, tmp_path, capsys):
        metrics = tmp_path / "t.jsonl"
        code = main(
            ["serve", "--events", str(recorded_stream),
             "--metrics", str(metrics), "--metrics-every", "2"]
        )
        assert code == EXIT_OK
        assert [e["interval"] for e in read_telemetry(metrics)] == [2]
        assert "telemetry:" in capsys.readouterr().out


class TestObsHealth:
    def test_replays_recorded_series(self, telemetry_series, capsys):
        metrics, _ = telemetry_series
        assert main(["obs", "health", str(metrics)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "health: OK over 2 intervals" in out
        assert "rule query-p99" in out

    def test_flood_transitions_and_report(self, flooded_series, tmp_path, capsys):
        report = tmp_path / "health.json"
        code = main(
            ["obs", "health", str(flooded_series), "--report", str(report)]
        )
        assert code == EXIT_OK  # healed by the end; --fail-on defaults to never
        out = capsys.readouterr().out
        assert "flood-share" in out
        assert "ok -> degraded" in out
        assert "degraded -> ok" in out
        saved = json.loads(report.read_text())
        overall = [
            (t["from"], t["to"])
            for t in saved["transitions"]
            if t["scope"] == "overall"
        ]
        assert overall == [("ok", "degraded"), ("degraded", "ok")]

    def test_fail_on_degraded(self, flooded_series, capsys):
        # With a tight flood ceiling even the healthy intervals breach, so
        # the final state stays degraded and --fail-on promotes it.
        code = main(
            ["obs", "health", str(flooded_series),
             "--flood-share", "0.05", "--fail-on", "degraded"]
        )
        assert code == EXIT_FAILURE
        assert "DEGRADED" in capsys.readouterr().out

    def test_missing_file(self, tmp_path, capsys):
        code = main(["obs", "health", str(tmp_path / "absent.jsonl")])
        assert code == EXIT_CONFIG
        assert "cannot read" in capsys.readouterr().err

    def test_file_without_snapshots(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["obs", "health", str(path)]) == EXIT_CONFIG
        assert "no telemetry snapshots" in capsys.readouterr().err


class TestObsTopAndExport:
    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "obs.jsonl"
        argv = [
            "simulate", "--nodes", "30", "--pretrusted", "2",
            "--colluders", "6", "--cycles", "2", "--trace", str(path),
        ]
        assert main(argv) == EXIT_OK
        return path

    def test_top_prints_hot_path_table(self, trace, capsys):
        assert main(["obs", "top", str(trace), "-n", "5"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "phase" in out and "self" in out and "cum" in out
        assert "sim.cycle" in out

    def test_top_missing_file(self, tmp_path, capsys):
        code = main(["obs", "top", str(tmp_path / "absent.jsonl")])
        assert code == EXIT_CONFIG
        assert "cannot read" in capsys.readouterr().err

    def test_export_trace_metrics_to_stdout(self, trace, capsys):
        assert main(["obs", "export", str(trace)]) == EXIT_OK
        families = parse_prometheus(capsys.readouterr().out)
        assert any(name.startswith("repro_") for name in families)

    def test_export_telemetry_to_file(self, telemetry_series, tmp_path, capsys):
        metrics, _ = telemetry_series
        output = tmp_path / "exposition.prom"
        code = main(["obs", "export", str(metrics), "--output", str(output)])
        assert code == EXIT_OK
        assert "families" in capsys.readouterr().out
        families = parse_prometheus(output.read_text())
        # The LAST snapshot is exported: 2 watermarks recorded.
        assert ("repro_serve_events_watermark_total", (), 2.0) in families[
            "repro_serve_events_watermark_total"
        ]["samples"]

    def test_export_without_snapshot_is_config_error(self, tmp_path, capsys):
        path = tmp_path / "spans-only.jsonl"
        path.write_text("")
        assert main(["obs", "export", str(path)]) == EXIT_CONFIG
        assert "no metrics/telemetry snapshot" in capsys.readouterr().err


class TestLegacyObsSpelling:
    def test_bare_obs_path_routes_to_report(self, telemetry_series, capsys):
        metrics, _ = telemetry_series
        assert main(["obs", str(metrics)]) == EXIT_OK
        assert capsys.readouterr().out.startswith("validated ")

    def test_obs_without_arguments_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["obs"])
        assert exc.value.code == 2

    def test_unknown_flag_not_shimmed(self):
        with pytest.raises(SystemExit) as exc:
            main(["obs", "--bogus", "x"])
        assert exc.value.code == 2
