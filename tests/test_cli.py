"""Tests for the command-line interface."""

import pytest

from repro.cli import EXIT_CONFIG, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig8"])
        assert args.experiments == ["fig8"]
        assert args.runs == 2
        assert args.cycles == 25

    def test_trace_options(self, tmp_path):
        args = build_parser().parse_args(
            ["trace", str(tmp_path / "t.json"), "--users", "100", "--months", "3"]
        )
        assert args.users == 100


class TestCommands:
    def test_list_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "table1" in out

    def test_run_trace_figure(self, capsys):
        # fig3 runs on a default-config synthetic trace: a few seconds.
        assert main(["run", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "mean_rating_by_hop" in out

    def test_run_small_simulation(self, capsys, monkeypatch):
        # Shrink the world so the CLI smoke test stays fast.
        import repro.experiments.figures as figures

        original = figures.fig7

        def small_fig7(n_runs, simulation_cycles, seed):
            return original(
                n_runs=1,
                simulation_cycles=2,
                seed=seed,
                overrides=dict(
                    n_nodes=24,
                    n_pretrusted=2,
                    n_colluders=4,
                    n_interests=6,
                    interests_per_node=(1, 3),
                    query_cycles=4,
                ),
            )

        monkeypatch.setitem(
            __import__("repro.experiments.registry", fromlist=["EXPERIMENTS"]).EXPERIMENTS,
            "fig7",
            small_fig7,
        )
        assert main(["run", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "EigenTrust" in out

    def test_trace_and_analyze_round_trip(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert (
            main(["trace", str(path), "--users", "120", "--months", "3"]) == 0
        )
        assert path.exists()
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "C(reputation, business size)" in out

    def test_run_unknown_experiment_is_config_error(self, capsys):
        assert main(["run", "nope"]) == EXIT_CONFIG
        assert "error" in capsys.readouterr().err

    def test_simulate_trace_and_obs_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "obs.jsonl"
        argv = [
            "simulate", "--nodes", "30", "--pretrusted", "2",
            "--colluders", "6", "--cycles", "2", "--trace", str(trace),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert trace.exists()
        assert "== detector audit ==" in out
        assert main(["obs", str(trace)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("validated ")
        assert "== phases ==" in out
