"""End-to-end integration tests of the paper's headline claims.

Medium-scale worlds (60 nodes, ~10 cycles) — large enough for the collusion
dynamics to express themselves, small enough to keep the suite quick.  Each
test encodes one qualitative claim of the evaluation section ("who wins"),
not absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments.setup import (
    CollusionKind,
    SystemKind,
    WorldConfig,
    build_world,
)

MEDIUM = dict(
    n_nodes=60,
    n_pretrusted=4,
    n_colluders=10,
    n_interests=10,
    interests_per_node=(1, 5),
    simulation_cycles=10,
    query_cycles=15,
)


def run(system, collusion, b, seed=11, **kw):
    config = WorldConfig(
        system=system, collusion=collusion, colluder_b=b, **{**MEDIUM, **kw}
    )
    world = build_world(config, seed=seed, run_index=0)
    world.simulation.run()
    reps = world.simulation.metrics.final_reputations()
    return config, world, reps


def group_means(config, reps):
    return (
        reps[list(config.colluder_ids)].mean(),
        reps[list(config.normal_ids)].mean(),
        reps[list(config.pretrusted_ids)].mean(),
    )


class TestFig8Claim:
    """PCM B=0.6: EigenTrust fails, SocialTrust restores order."""

    def test_eigentrust_colluders_dominate(self):
        config, _, reps = run(SystemKind.EIGENTRUST, CollusionKind.PCM, 0.6)
        col, normal, _ = group_means(config, reps)
        assert col > 3 * normal

    def test_socialtrust_collapses_colluders(self):
        config, _, reps = run(
            SystemKind.EIGENTRUST_SOCIALTRUST, CollusionKind.PCM, 0.6
        )
        col, normal, _ = group_means(config, reps)
        assert col < normal

    def test_socialtrust_cuts_request_share(self):
        _, plain_world, _ = run(SystemKind.EIGENTRUST, CollusionKind.PCM, 0.6)
        config, st_world, _ = run(
            SystemKind.EIGENTRUST_SOCIALTRUST, CollusionKind.PCM, 0.6
        )
        cols = config.colluder_ids
        plain = plain_world.simulation.metrics.fraction_served_by(cols)
        with_st = st_world.simulation.metrics.fraction_served_by(cols)
        assert with_st < 0.5 * plain


class TestFig9Claim:
    """PCM B=0.2: EigenTrust already suppresses, SocialTrust drives to ~0."""

    def test_eigentrust_suppresses_low_b(self):
        config, _, reps = run(SystemKind.EIGENTRUST, CollusionKind.PCM, 0.2)
        col, normal, _ = group_means(config, reps)
        assert col < 2 * normal

    def test_socialtrust_near_zero(self):
        config, _, reps = run(
            SystemKind.EIGENTRUST_SOCIALTRUST, CollusionKind.PCM, 0.2
        )
        col, normal, _ = group_means(config, reps)
        assert col < 0.5 * normal


class TestFig10Claim:
    """Compromised pre-trusted peers break EigenTrust; SocialTrust holds."""

    def test_compromise_amplifies_colluders(self):
        config_plain, world_plain, reps_plain = run(
            SystemKind.EIGENTRUST, CollusionKind.PCM, 0.2
        )
        config_pre, world_pre, reps_pre = run(
            SystemKind.EIGENTRUST,
            CollusionKind.PCM,
            0.2,
            n_compromised_pretrusted=3,
        )
        frac_plain = world_plain.simulation.metrics.fraction_served_by(
            config_plain.colluder_ids
        )
        frac_pre = world_pre.simulation.metrics.fraction_served_by(
            config_pre.colluder_ids
        )
        assert frac_pre > frac_plain

    def test_socialtrust_resists_compromise(self):
        config, world, reps = run(
            SystemKind.EIGENTRUST_SOCIALTRUST,
            CollusionKind.PCM,
            0.2,
            n_compromised_pretrusted=3,
        )
        col, normal, _ = group_means(config, reps)
        assert col < normal
        frac = world.simulation.metrics.fraction_served_by(config.colluder_ids)
        assert frac < 0.1


class TestFig13Claim:
    """MMM B=0.6: boosted nodes top plain EigenTrust; SocialTrust collapses."""

    def test_mmm_boosted_dominate_eigentrust(self):
        config, world, reps = run(SystemKind.EIGENTRUST, CollusionKind.MMM, 0.6)
        col, normal, _ = group_means(config, reps)
        assert col > 3 * normal

    def test_socialtrust_fixes_mmm(self):
        """At this reduced scale colluders keep the organic reputation a
        B=0.6 service record legitimately earns, so the claim is that
        SocialTrust removes the *collusion* gain: an order of magnitude
        below plain EigenTrust and no longer dominating normal nodes.
        (The full-scale bench reproduces the paper's complete collapse.)"""
        config_plain, _, reps_plain = run(
            SystemKind.EIGENTRUST, CollusionKind.MMM, 0.6
        )
        config, _, reps = run(
            SystemKind.EIGENTRUST_SOCIALTRUST, CollusionKind.MMM, 0.6
        )
        col_plain, _, _ = group_means(config_plain, reps_plain)
        col, normal, _ = group_means(config, reps)
        assert col < 0.4 * col_plain
        assert col < 2.0 * normal


class TestFalsifiedInfoClaim:
    """Fig. 16: falsified social info does not defeat SocialTrust."""

    def test_colluders_still_below_normal(self):
        config, _, reps = run(
            SystemKind.EIGENTRUST_SOCIALTRUST,
            CollusionKind.PCM,
            0.6,
            falsified_social_info=True,
        )
        col, normal, _ = group_means(config, reps)
        assert col < normal


class TestEBayClaims:
    """Fig. 9(b): eBay suppresses colluders at B=0.2; ST helps further."""

    def test_ebay_low_b_suppression(self):
        config, _, reps = run(SystemKind.EBAY, CollusionKind.PCM, 0.2)
        col, normal, _ = group_means(config, reps)
        assert col < normal

    def test_ebay_socialtrust_no_worse(self):
        config_plain, _, reps_plain = run(SystemKind.EBAY, CollusionKind.PCM, 0.6)
        config_st, _, reps_st = run(
            SystemKind.EBAY_SOCIALTRUST, CollusionKind.PCM, 0.6
        )
        col_plain = reps_plain[list(config_plain.colluder_ids)].mean()
        col_st = reps_st[list(config_st.colluder_ids)].mean()
        assert col_st <= col_plain * 1.25


class TestReputationInvariants:
    @pytest.mark.parametrize(
        "system",
        [
            SystemKind.EIGENTRUST,
            SystemKind.EBAY,
            SystemKind.EIGENTRUST_SOCIALTRUST,
            SystemKind.EBAY_SOCIALTRUST,
        ],
    )
    def test_distribution_normalised(self, system):
        _, _, reps = run(system, CollusionKind.PCM, 0.6)
        assert np.all(reps >= 0)
        assert reps.sum() == pytest.approx(1.0, abs=1e-6)
