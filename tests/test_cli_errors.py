"""CLI error paths: malformed traces, unwritable outputs, unknown
subcommands, and the `qa` command group's failure modes."""

import pytest

import repro.qa.scenarios as scenarios_mod
from repro.cli import EXIT_CONFIG, main
from repro.qa import GOLDEN_SCENARIOS, GoldenScenario


@pytest.fixture
def fast_goldens(monkeypatch):
    """Shrink the golden registry to one 2-cycle scenario for CLI tests."""
    fast = GoldenScenario(
        name="fast",
        build=dict(
            GOLDEN_SCENARIOS["eigentrust_pcm"].build,
            n_nodes=20,
            n_pretrusted=2,
            n_colluders=4,
            query_cycles=3,
            simulation_cycles=2,
        ),
        cycles=2,
        seed=5,
    )
    monkeypatch.setattr(scenarios_mod, "GOLDEN_SCENARIOS", {"fast": fast})


class TestObsErrors:
    def test_malformed_jsonl(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["obs", str(path)]) == EXIT_CONFIG
        assert "error: invalid trace" in capsys.readouterr().err

    def test_truncated_json_line(self, tmp_path, capsys):
        path = tmp_path / "cut.jsonl"
        path.write_text('{"kind": "span", "name": "x"\n')
        assert main(["obs", str(path)]) == EXIT_CONFIG
        assert "error: invalid trace" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "absent.jsonl")]) == EXIT_CONFIG
        assert "error: cannot read" in capsys.readouterr().err


class TestSimulateTraceErrors:
    def test_nonexistent_trace_directory(self, tmp_path, capsys):
        # chmod tricks do not work for root, so the unwritable case is
        # modelled as a missing parent directory.
        target = tmp_path / "no" / "such" / "dir" / "trace.jsonl"
        code = main(["simulate", "--cycles", "1", "--trace", str(target)])
        assert code == EXIT_CONFIG
        assert "trace directory does not exist" in capsys.readouterr().err


class TestUnknownCommands:
    def test_unknown_subcommand_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["frobnicate"])
        assert exc.value.code == 2

    def test_unknown_qa_subcommand_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["qa", "frobnicate"])
        assert exc.value.code == 2

    def test_qa_without_subcommand_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["qa"])
        assert exc.value.code == 2


class TestQaRecordCheck:
    def test_record_refuses_overwrite_without_update(
        self, fast_goldens, tmp_path, capsys
    ):
        golden_dir = str(tmp_path)
        assert main(["qa", "record", "--golden-dir", golden_dir]) == 0
        assert "wrote" in capsys.readouterr().out
        assert (tmp_path / "fast.jsonl").exists()

        assert main(["qa", "record", "--golden-dir", golden_dir]) == EXIT_CONFIG
        assert "already exists" in capsys.readouterr().err

        assert (
            main(["qa", "record", "--golden-dir", golden_dir, "--update"]) == 0
        )

    def test_record_unknown_scenario(self, fast_goldens, tmp_path, capsys):
        code = main(
            ["qa", "record", "--golden-dir", str(tmp_path), "--scenario", "nope"]
        )
        assert code == EXIT_CONFIG
        assert "unknown golden scenario" in capsys.readouterr().err

    def test_check_missing_golden(self, fast_goldens, tmp_path, capsys):
        code = main(["qa", "check", "--golden-dir", str(tmp_path / "empty")])
        assert code == EXIT_CONFIG
        assert "error" in capsys.readouterr().err

    def test_check_round_trip_and_report(self, fast_goldens, tmp_path, capsys):
        golden_dir = str(tmp_path)
        assert main(["qa", "record", "--golden-dir", golden_dir]) == 0
        capsys.readouterr()
        report = tmp_path / "diff-report.txt"
        code = main(
            [
                "qa", "check", "--golden-dir", golden_dir,
                "--mode", "strict", "--report", str(report),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fast: OK (strict)" in out
        assert report.exists()
        assert "=== fast ===" in report.read_text()


class TestQaFuzzDiff:
    def test_fuzz_zero_steps_rejected(self, capsys):
        assert main(["qa", "fuzz", "--steps", "0"]) == EXIT_CONFIG
        assert "error" in capsys.readouterr().err

    def test_fuzz_smoke(self, capsys):
        code = main(
            ["qa", "fuzz", "--steps", "8", "--seed", "1", "--harness", "engine"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fuzz[engine]" in out
        assert "all invariants held" in out
