"""Tests for compromised pre-trusted collusion."""

import pytest

from repro.collusion.compromise import CompromisedPretrustedCollusion
from repro.utils.rng import spawn_rng

INTERESTS = [frozenset({i % 3}) for i in range(10)]


@pytest.fixture
def rng():
    return spawn_rng(23, 0)


class TestCompromisedPretrusted:
    def test_each_compromised_node_gets_a_partner(self, rng):
        schedule = CompromisedPretrustedCollusion([0, 1], [5, 6, 7], INTERESTS, rng)
        partners = dict(schedule.partners)
        assert set(partners) == {0, 1}
        assert all(p in {5, 6, 7} for p in partners.values())

    def test_mutual_bursts(self, rng):
        schedule = CompromisedPretrustedCollusion(
            [0], [5], INTERESTS, rng, ratings_per_cycle=20
        )
        bursts = list(schedule.bursts(rng))
        assert {(b.rater, b.ratee) for b in bursts} == {(0, 5), (5, 0)}
        assert all(b.count == 20 and b.value == 1.0 for b in bursts)

    def test_colluders_cover_both_sides(self, rng):
        schedule = CompromisedPretrustedCollusion([0, 1], [5], INTERESTS, rng)
        assert set(schedule.colluders) == {0, 1, 5}

    def test_rejects_empty_compromised(self, rng):
        with pytest.raises(ValueError):
            CompromisedPretrustedCollusion([], [5], INTERESTS, rng)

    def test_rejects_empty_colluders(self, rng):
        with pytest.raises(ValueError):
            CompromisedPretrustedCollusion([0], [], INTERESTS, rng)

    def test_rejects_overlap(self, rng):
        with pytest.raises(ValueError):
            CompromisedPretrustedCollusion([0], [0, 1], INTERESTS, rng)

    def test_rejects_zero_rate(self, rng):
        with pytest.raises(ValueError):
            CompromisedPretrustedCollusion(
                [0], [5], INTERESTS, rng, ratings_per_cycle=0
            )
