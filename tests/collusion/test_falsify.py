"""Tests for falsified static social information."""

import pytest

from repro.collusion.falsify import (
    falsify_identical_interests,
    falsify_single_relationship,
)
from repro.social.generators import paper_social_network
from repro.social.interests import InterestProfiles
from repro.utils.rng import spawn_rng


@pytest.fixture
def rng():
    return spawn_rng(31, 0)


@pytest.fixture
def network(rng):
    return paper_social_network(10, [0, 1, 2], rng)


class TestFalsifyRelationships:
    def test_reduces_to_single(self, network):
        assert len(network.relationships(0, 1)) >= 3
        falsify_single_relationship(network, [(0, 1)])
        assert len(network.relationships(0, 1)) == 1

    def test_rejects_non_adjacent(self, network, rng):
        # Find a non-adjacent pair among non-colluders.
        target = None
        for i in range(3, 10):
            for j in range(i + 1, 10):
                if network.distance(i, j) != 1:
                    target = (i, j)
                    break
            if target:
                break
        assert target is not None
        with pytest.raises(ValueError):
            falsify_single_relationship(network, [target])

    def test_custom_weight(self, network):
        falsify_single_relationship(network, [(0, 2)], weight=0.5)
        (rel,) = network.relationships(0, 2)
        assert rel.weight == 0.5


class TestFalsifyInterests:
    @pytest.fixture
    def profiles(self):
        p = InterestProfiles(6, 12)
        for i in range(6):
            p.set_declared(i, {i, i + 1})
        return p

    def test_group_shares_declared_set(self, profiles, rng):
        falsify_identical_interests(profiles, [[0, 1, 2]], rng)
        assert profiles.declared(0) == profiles.declared(1) == profiles.declared(2)

    def test_set_size_in_range(self, profiles, rng):
        falsify_identical_interests(
            profiles, [[0, 1]], rng, set_size_range=(2, 4)
        )
        assert 2 <= len(profiles.declared(0)) <= 4

    def test_groups_independent(self, profiles, rng):
        falsify_identical_interests(profiles, [[0, 1], [2, 3]], rng)
        # Groups drew independently; extremely unlikely to match and both
        # must differ from untouched nodes' sets only coincidentally.
        assert profiles.declared(0) == profiles.declared(1)
        assert profiles.declared(2) == profiles.declared(3)

    def test_behaviour_untouched(self, profiles, rng):
        profiles.record_request(0, 11, 5.0)
        falsify_identical_interests(profiles, [[0, 1]], rng)
        assert profiles.behavioural_interests(0) == frozenset({11})

    def test_rejects_small_group(self, profiles, rng):
        with pytest.raises(ValueError):
            falsify_identical_interests(profiles, [[0]], rng)

    def test_rejects_bad_range(self, profiles, rng):
        with pytest.raises(ValueError):
            falsify_identical_interests(
                profiles, [[0, 1]], rng, set_size_range=(0, 5)
            )
        with pytest.raises(ValueError):
            falsify_identical_interests(
                profiles, [[0, 1]], rng, set_size_range=(1, 99)
            )
