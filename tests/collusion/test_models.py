"""Tests for the PCM / MCM / MMM collusion schedules."""

import pytest

from repro.collusion.models import (
    CompositeCollusion,
    MultiNodeCollusion,
    MutualMultiNodeCollusion,
    NoCollusion,
    PairwiseCollusion,
    RatingBurst,
)
from repro.utils.rng import spawn_rng

INTERESTS = [frozenset({i % 4, (i + 1) % 4}) for i in range(12)]


@pytest.fixture
def rng():
    return spawn_rng(17, 0)


class TestRatingBurst:
    def test_rejects_self(self):
        with pytest.raises(ValueError):
            RatingBurst(rater=1, ratee=1, value=1.0, count=3)

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            RatingBurst(rater=0, ratee=1, value=1.0, count=0)


class TestNoCollusion:
    def test_empty(self, rng):
        schedule = NoCollusion()
        assert schedule.colluders == ()
        assert list(schedule.bursts(rng)) == []


class TestPairwise:
    def test_even_pairing(self, rng):
        schedule = PairwiseCollusion([2, 3, 4, 5], INTERESTS)
        assert schedule.pairs == ((2, 3), (4, 5))

    def test_odd_trailing_wraps(self, rng):
        schedule = PairwiseCollusion([2, 3, 4], INTERESTS)
        assert schedule.pairs == ((2, 3), (4, 2))

    def test_mutual_bursts(self, rng):
        schedule = PairwiseCollusion([2, 3], INTERESTS, ratings_per_cycle=20)
        bursts = list(schedule.bursts(rng))
        directed = {(b.rater, b.ratee) for b in bursts}
        assert directed == {(2, 3), (3, 2)}
        assert all(b.count == 20 and b.value == 1.0 for b in bursts)

    def test_interest_from_ratee(self, rng):
        schedule = PairwiseCollusion([2, 3], INTERESTS)
        for burst in schedule.bursts(rng):
            assert burst.interest in INTERESTS[burst.ratee]

    def test_rejects_single_colluder(self):
        with pytest.raises(ValueError):
            PairwiseCollusion([2], INTERESTS)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            PairwiseCollusion([2, 2], INTERESTS)

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            PairwiseCollusion([2, 3], INTERESTS, ratings_per_cycle=0)


class TestMultiNode:
    def test_role_partition(self, rng):
        schedule = MultiNodeCollusion(list(range(10)), INTERESTS, rng, n_boosted=3)
        assert len(schedule.boosted) == 3
        assert len(schedule.boosting) == 7
        assert set(schedule.boosted) | set(schedule.boosting) == set(range(10))

    def test_bursts_one_directional(self, rng):
        schedule = MultiNodeCollusion(list(range(8)), INTERESTS, rng, n_boosted=2)
        bursts = list(schedule.bursts(rng))
        boosted = set(schedule.boosted)
        assert all(b.ratee in boosted for b in bursts)
        assert all(b.rater not in boosted for b in bursts)
        assert len(bursts) == 6

    def test_counts_in_range(self, rng):
        schedule = MultiNodeCollusion(
            list(range(8)), INTERESTS, rng, n_boosted=2, ratings_range=(3, 7)
        )
        for _ in range(5):
            for burst in schedule.bursts(rng):
                assert 3 <= burst.count <= 7

    def test_target_stable(self, rng):
        schedule = MultiNodeCollusion(list(range(8)), INTERESTS, rng, n_boosted=2)
        booster = schedule.boosting[0]
        target = schedule.target_of(booster)
        for _ in range(3):
            for burst in schedule.bursts(rng):
                if burst.rater == booster:
                    assert burst.ratee == target

    def test_rejects_bad_n_boosted(self, rng):
        with pytest.raises(ValueError):
            MultiNodeCollusion(list(range(4)), INTERESTS, rng, n_boosted=4)

    def test_rejects_bad_range(self, rng):
        with pytest.raises(ValueError):
            MultiNodeCollusion(
                list(range(4)), INTERESTS, rng, n_boosted=1, ratings_range=(5, 3)
            )


class TestMutualMultiNode:
    def test_back_ratings_present(self, rng):
        schedule = MutualMultiNodeCollusion(
            list(range(8)),
            INTERESTS,
            rng,
            n_boosted=2,
            forward_ratings=20,
            back_ratings=5,
        )
        bursts = list(schedule.bursts(rng))
        boosted = set(schedule.boosted)
        forward = [b for b in bursts if b.ratee in boosted]
        backward = [b for b in bursts if b.rater in boosted]
        assert all(b.count == 20 for b in forward)
        assert all(b.count == 5 for b in backward)
        assert len(forward) == len(backward) == 6

    def test_back_rating_targets_own_boosters(self, rng):
        schedule = MutualMultiNodeCollusion(
            list(range(8)), INTERESTS, rng, n_boosted=2
        )
        for burst in schedule.bursts(rng):
            if burst.rater in schedule.boosted:
                assert schedule.target_of(burst.ratee) == burst.rater

    def test_rejects_zero_back_ratings(self, rng):
        with pytest.raises(ValueError):
            MutualMultiNodeCollusion(
                list(range(8)), INTERESTS, rng, n_boosted=2, back_ratings=0
            )


class TestComposite:
    def test_union_of_bursts(self, rng):
        a = PairwiseCollusion([0, 1], INTERESTS)
        b = PairwiseCollusion([2, 3], INTERESTS)
        combo = CompositeCollusion([a, b])
        raters = {x.rater for x in combo.bursts(rng)}
        assert raters == {0, 1, 2, 3}

    def test_colluders_deduplicated(self, rng):
        a = PairwiseCollusion([0, 1], INTERESTS)
        b = PairwiseCollusion([1, 2], INTERESTS)
        combo = CompositeCollusion([a, b])
        assert sorted(combo.colluders) == [0, 1, 2]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CompositeCollusion([])
