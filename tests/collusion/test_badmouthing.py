"""Tests for the negative-rating (badmouthing) collusion schedule."""

import pytest

from repro.collusion.models import BadmouthingCollusion
from repro.utils.rng import spawn_rng

INTERESTS = [frozenset({i % 3}) for i in range(10)]


@pytest.fixture
def rng():
    return spawn_rng(41, 0)


class TestBadmouthing:
    def test_all_bursts_negative(self, rng):
        schedule = BadmouthingCollusion([0, 1], [5, 6], INTERESTS)
        for burst in schedule.bursts(rng):
            assert burst.value == -1.0
            assert burst.count == 20

    def test_targets_are_victims(self, rng):
        schedule = BadmouthingCollusion([0, 1, 2], [7, 8], INTERESTS)
        for _ in range(5):
            for burst in schedule.bursts(rng):
                assert burst.ratee in {7, 8}
                assert burst.rater in {0, 1, 2}

    def test_interest_from_victim(self, rng):
        schedule = BadmouthingCollusion([0], [5], INTERESTS)
        (burst,) = list(schedule.bursts(rng))
        assert burst.interest in INTERESTS[5]

    def test_colluders_property(self, rng):
        schedule = BadmouthingCollusion([3, 4], [5], INTERESTS)
        assert schedule.colluders == (3, 4)
        assert schedule.victims == (5,)

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            BadmouthingCollusion([0, 1], [1, 2], INTERESTS)

    def test_rejects_empty_sides(self):
        with pytest.raises(ValueError):
            BadmouthingCollusion([], [1], INTERESTS)
        with pytest.raises(ValueError):
            BadmouthingCollusion([0], [], INTERESTS)

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            BadmouthingCollusion([0], [1], INTERESTS, ratings_per_cycle=0)


class TestBadmouthingEndToEnd:
    """SocialTrust's B4 pattern protects victims from suppression."""

    def _run(self, use_socialtrust, cycles=8, seed=19):
        import numpy as np

        from repro.core import SocialTrust
        from repro.p2p import (
            InterestOverlay,
            Population,
            Simulation,
            SimulationConfig,
        )
        from repro.reputation import EigenTrust
        from repro.social import InteractionLedger, InterestProfiles
        from repro.social.generators import paper_social_network

        n = 40
        colluders = tuple(range(2, 8))
        victims = tuple(range(8, 12))
        rng = spawn_rng(seed, 0)
        pop = Population.build(
            n,
            rng,
            pretrusted_ids=(0, 1),
            malicious_ids=colluders,
            n_interests=8,
            interests_per_node=(1, 4),
            malicious_authentic_prob=0.6,
        )
        # Victims share the colluders' market: same declared interests.
        overlay = InterestOverlay([s.interests for s in pop], 8)
        network = paper_social_network(n, colluders, rng)
        interactions = InteractionLedger(n)
        profiles = InterestProfiles(n, 8)
        for spec in pop:
            profiles.set_declared(spec.node_id, spec.interests)
        # Competitor attack: victims get the colluders' interests so the
        # badmouthing happens at HIGH interest similarity (behaviour B4).
        for v, c in zip(victims, colluders):
            profiles.set_declared(v, profiles.declared(c))
            for interest in profiles.declared(c):
                profiles.record_request(v, interest, 2.0)
            for interest in profiles.declared(c):
                profiles.record_request(c, interest, 2.0)
        base = EigenTrust(n, (0, 1), pretrust_weight=0.05)
        system = (
            SocialTrust(base, network, interactions, profiles)
            if use_socialtrust
            else base
        )
        attack = BadmouthingCollusion(
            colluders, victims, [s.interests for s in pop], ratings_per_cycle=20
        )
        sim = Simulation(
            pop,
            overlay,
            system,
            rng,
            config=SimulationConfig(
                simulation_cycles=cycles, query_cycles_per_simulation_cycle=10
            ),
            collusion=attack,
            interactions=interactions,
            profiles=profiles,
        )
        sim.run()
        reps = sim.metrics.final_reputations()
        return float(np.mean(reps[list(victims)]))

    def test_socialtrust_protects_victims(self):
        without = self._run(use_socialtrust=False)
        with_st = self._run(use_socialtrust=True)
        # Badmouthing suppresses the victims under plain EigenTrust; the
        # B4 pattern damps the negative floods so victims keep more
        # reputation under SocialTrust.
        assert with_st > without
