"""Tests for trace record types."""

import numpy as np
import pytest

from repro.trace.schema import Trace, TraceUser, Transaction


def user(uid, **kw):
    return TraceUser(user_id=uid, **kw)


def tx(buyer=0, seller=1, **kw):
    defaults = dict(category=0, rating=1.0, month=0)
    defaults.update(kw)
    return Transaction(buyer=buyer, seller=seller, **defaults)


class TestTransaction:
    def test_valid(self):
        t = tx(rating=-2.0, counter_rating=2.0, n_ratings=3)
        assert t.rating == -2.0

    def test_rejects_self_trade(self):
        with pytest.raises(ValueError):
            tx(buyer=1, seller=1)

    def test_rejects_rating_out_of_scale(self):
        with pytest.raises(ValueError):
            tx(rating=2.5)
        with pytest.raises(ValueError):
            tx(rating=-2.5)

    def test_rejects_counter_rating_out_of_scale(self):
        with pytest.raises(ValueError):
            tx(counter_rating=3.0)

    def test_rejects_zero_ratings(self):
        with pytest.raises(ValueError):
            tx(n_ratings=0)

    def test_rejects_negative_month(self):
        with pytest.raises(ValueError):
            tx(month=-1)


class TestTrace:
    @pytest.fixture
    def trace(self):
        users = [
            user(0, friends={1}, business_contacts={1, 2}, reputation=5.0),
            user(1, friends={0}, business_contacts={0}, reputation=2.0),
            user(2, business_contacts={0}, reputation=1.0),
        ]
        transactions = [
            tx(buyer=0, seller=1, category=0),
            tx(buyer=0, seller=2, category=1),
            tx(buyer=1, seller=0, category=0),
        ]
        return Trace(users=users, transactions=transactions, n_categories=3, n_months=2)

    def test_sizes(self, trace):
        assert trace.n_users == 3
        assert trace.n_transactions == 3

    def test_vectors(self, trace):
        assert np.array_equal(trace.reputations(), [5.0, 2.0, 1.0])
        assert np.array_equal(trace.personal_sizes(), [1, 1, 0])
        assert np.array_equal(trace.business_sizes(), [2, 1, 1])

    def test_transactions_received(self, trace):
        assert np.array_equal(trace.transactions_received(), [1, 1, 1])

    def test_purchase_counts(self, trace):
        counts = trace.purchase_counts_by_category()
        assert counts.shape == (3, 3)
        assert counts[0, 0] == 1 and counts[0, 1] == 1
        assert counts[1, 0] == 1
