"""Calibration tests for the synthetic Overstock marketplace.

These assert the paper's Section-3 aggregates hold on the default
configuration — wide tolerances, because they are stochastic targets, but
tight enough that a mis-calibration (the wrong mechanism, not just the
wrong noise draw) fails.
"""

import numpy as np
import pytest

from repro.trace.analysis import (
    business_network_vs_reputation,
    category_rank_distribution,
    interest_similarity_cdf,
    personal_network_vs_reputation,
    rating_stats_by_distance,
)
from repro.trace.generator import MarketplaceConfig, generate_trace
from repro.trace.schema import RATING_MAX, RATING_MIN


@pytest.fixture(scope="module")
def trace():
    # Module-scoped: the generator run is the expensive part.
    return generate_trace(MarketplaceConfig(n_users=1200, n_months=18), seed=5)


class TestBasicShape:
    def test_counts(self, trace):
        assert trace.n_users == 1200
        assert trace.n_transactions > 3000

    def test_ratings_in_scale(self, trace):
        for t in trace.transactions[:500]:
            assert RATING_MIN <= t.rating <= RATING_MAX

    def test_burst_mean_near_paper_frequency(self, trace):
        """Mean per-pair rating frequency ~ 2.2/month (Overstock)."""
        bursts = np.array([t.n_ratings for t in trace.transactions])
        assert 1.6 <= bursts.mean() <= 3.0

    def test_deterministic(self):
        cfg = MarketplaceConfig(n_users=200, n_months=4)
        a = generate_trace(cfg, seed=9)
        b = generate_trace(cfg, seed=9)
        assert a.n_transactions == b.n_transactions
        assert a.transactions[0] == b.transactions[0]

    def test_different_seeds_differ(self):
        cfg = MarketplaceConfig(n_users=200, n_months=4)
        a = generate_trace(cfg, seed=9)
        b = generate_trace(cfg, seed=10)
        assert a.transactions != b.transactions


class TestPaperCalibration:
    def test_o1_business_network_tracks_reputation(self, trace):
        """Fig. 1(a): C ~ 0.996 in the paper; require a strong relationship."""
        assert business_network_vs_reputation(trace).correlation > 0.85

    def test_o2_personal_network_untracked(self, trace):
        """Fig. 2: C ~ 0.092 in the paper; require a weak relationship."""
        assert personal_network_vs_reputation(trace).correlation < 0.3

    def test_o3_o4_ratings_decay_with_distance(self, trace):
        stats = rating_stats_by_distance(trace)
        means = stats.mean_rating
        assert means[0] > means[1] > means[2] > means[3]
        freq = stats.mean_ratings_per_pair
        assert freq[0] > freq[3]

    def test_o5_top3_categories_dominate(self, trace):
        """Fig. 4(a): top 3 category ranks ~ 88% of purchases."""
        cdf = category_rank_distribution(trace)
        assert 0.8 <= cdf[2] <= 0.95

    def test_rank_cdf_monotone_to_one(self, trace):
        cdf = category_rank_distribution(trace)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] <= 1.0 + 1e-9

    def test_o6_similar_peers_trade(self, trace):
        """Fig. 4(b): <=20% similarity covers ~10% of transactions; >30%
        similarity covers ~60%."""
        edges, cdf = interest_similarity_cdf(trace)
        below_02 = cdf[np.searchsorted(edges, 0.2)]
        above_03 = 1.0 - cdf[np.searchsorted(edges, 0.3)]
        assert below_02 <= 0.3
        assert above_03 >= 0.45


class TestConfigValidation:
    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            MarketplaceConfig(n_users=5)

    def test_rejects_bad_social_fraction(self):
        with pytest.raises(ValueError):
            MarketplaceConfig(social_purchase_fraction=1.5)

    def test_rejects_bad_hop_weights(self):
        with pytest.raises(ValueError):
            MarketplaceConfig(hop_weights=(0.5, 0.2, 0.2))

    def test_rejects_category_overflow(self):
        with pytest.raises(ValueError):
            MarketplaceConfig(n_categories=5, buyer_interest_range=(4, 10))

    def test_rejects_bad_burst_prob(self):
        with pytest.raises(ValueError):
            MarketplaceConfig(burst_continue_prob=1.0)
