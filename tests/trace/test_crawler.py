"""Tests for the BFS trace crawler."""

import pytest

from repro.trace.crawler import bfs_crawl
from repro.trace.generator import MarketplaceConfig, generate_trace
from repro.trace.schema import Trace, TraceUser, Transaction


@pytest.fixture(scope="module")
def trace():
    return generate_trace(MarketplaceConfig(n_users=300, n_months=6), seed=2)


def hand_trace():
    """0-1 friends; 1-2 business; 3 isolated."""
    users = [
        TraceUser(0, friends={1}),
        TraceUser(1, friends={0}, business_contacts={2}),
        TraceUser(2, business_contacts={1}),
        TraceUser(3),
    ]
    transactions = [
        Transaction(buyer=1, seller=2, category=0, rating=1.0, month=0),
        Transaction(buyer=3, seller=0, category=0, rating=1.0, month=0),
    ]
    return Trace(users=users, transactions=transactions, n_categories=2, n_months=1)


class TestBfsCrawl:
    def test_follows_both_link_types(self):
        sub = bfs_crawl(hand_trace(), 0)
        assert sub.n_users == 3  # 0, 1 (friend), 2 (business via 1)

    def test_isolated_node_not_reached(self):
        sub = bfs_crawl(hand_trace(), 0)
        # Node 3 had a transaction but no social/business link into the
        # crawled component.
        assert sub.n_transactions == 1

    def test_ids_reindexed_densely(self):
        sub = bfs_crawl(hand_trace(), 1)
        assert [u.user_id for u in sub.users] == list(range(sub.n_users))

    def test_links_remapped_consistently(self):
        sub = bfs_crawl(hand_trace(), 0)
        by_id = {u.user_id: u for u in sub.users}
        # Seed is id 0; its friend must be a valid reindexed id.
        for friend in by_id[0].friends:
            assert friend in by_id

    def test_transactions_endpoint_filtered(self):
        sub = bfs_crawl(hand_trace(), 0)
        for t in sub.transactions:
            assert 0 <= t.buyer < sub.n_users
            assert 0 <= t.seller < sub.n_users

    def test_max_users_cap(self, trace):
        sub = bfs_crawl(trace, 0, max_users=50)
        assert sub.n_users <= 50

    def test_full_crawl_of_connected_component(self, trace):
        sub = bfs_crawl(trace, 0)
        # Preferential-attachment friendships make the graph connected.
        assert sub.n_users == trace.n_users

    def test_crawl_preserves_reputation(self, trace):
        sub = bfs_crawl(trace, 0, max_users=30)
        # Reputation values are carried over (order may change).
        original = sorted(u.reputation for u in trace.users)
        crawled = [u.reputation for u in sub.users]
        assert all(any(abs(c - o) < 1e-12 for o in original) for c in crawled[:5])

    def test_bad_seed_rejected(self, trace):
        with pytest.raises(IndexError):
            bfs_crawl(trace, trace.n_users)

    def test_bad_cap_rejected(self, trace):
        with pytest.raises(ValueError):
            bfs_crawl(trace, 0, max_users=0)

    def test_seed_only_crawl(self):
        sub = bfs_crawl(hand_trace(), 3, max_users=1)
        assert sub.n_users == 1
        assert sub.n_transactions == 0
