"""Tests for the Section-3 analysis functions on hand-built traces."""

import numpy as np
import pytest

from repro.trace.analysis import (
    business_network_vs_reputation,
    category_rank_distribution,
    interest_similarity_cdf,
    personal_network_vs_reputation,
    rating_stats_by_distance,
    transactions_vs_reputation,
)
from repro.trace.schema import Trace, TraceUser, Transaction


def build_trace(users, transactions, n_categories=4):
    return Trace(
        users=users, transactions=transactions, n_categories=n_categories, n_months=1
    )


def tx(buyer, seller, category=0, rating=1.0, n_ratings=1):
    return Transaction(
        buyer=buyer,
        seller=seller,
        category=category,
        rating=rating,
        month=0,
        n_ratings=n_ratings,
    )


@pytest.fixture
def linear_trace():
    """Reputation exactly proportional to business size for active users."""
    users = []
    for uid in range(6):
        users.append(
            TraceUser(
                user_id=uid,
                business_contacts=set(range(uid)),
                reputation=float(2 * uid),
                sell_categories=frozenset({0}),
            )
        )
    transactions = [tx(buyer=0, seller=uid) for uid in range(1, 6)]
    return build_trace(users, transactions)


class TestCorrelations:
    def test_perfectly_linear_business(self, linear_trace):
        result = business_network_vs_reputation(linear_trace)
        assert result.correlation == pytest.approx(1.0)

    def test_inactive_users_excluded(self):
        users = [
            TraceUser(0, reputation=1.0, business_contacts={1}),
            TraceUser(1, reputation=2.0, business_contacts={0}),
            # Never traded; enormous values that would skew the fit.
            TraceUser(2, reputation=999.0, business_contacts=set()),
        ]
        result = business_network_vs_reputation(
            build_trace(users, [tx(0, 1)])
        )
        assert result.x.size == 2

    def test_transactions_vs_reputation_counts_both_roles(self):
        users = [TraceUser(0, reputation=2.0), TraceUser(1, reputation=2.0)]
        result = transactions_vs_reputation(build_trace(users, [tx(0, 1)]))
        assert np.array_equal(result.y, [1.0, 1.0])

    def test_personal_network_uses_friends(self):
        users = [
            TraceUser(0, friends={1, 2}, reputation=1.0),
            TraceUser(1, friends={0}, reputation=5.0),
            TraceUser(2, friends={0}, reputation=3.0),
        ]
        result = personal_network_vs_reputation(
            build_trace(users, [tx(0, 1), tx(1, 2), tx(2, 0)])
        )
        assert np.array_equal(result.y, [2, 1, 1])


class TestDistanceStats:
    def test_buckets_by_hop(self):
        users = [
            TraceUser(0, friends={1}),
            TraceUser(1, friends={0, 2}),
            TraceUser(2, friends={1}),
            TraceUser(3),  # disconnected
        ]
        transactions = [
            tx(0, 1, rating=2.0),       # hop 1
            tx(0, 2, rating=1.0),       # hop 2
            tx(0, 3, rating=-1.0),      # unreachable -> overflow bucket
        ]
        stats = rating_stats_by_distance(build_trace(users, transactions))
        assert stats.mean_rating[0] == pytest.approx(2.0)
        assert stats.mean_rating[1] == pytest.approx(1.0)
        assert stats.mean_rating[3] == pytest.approx(-1.0)
        assert stats.n_transactions.tolist() == [1, 1, 0, 1]

    def test_frequency_weighted_mean(self):
        users = [TraceUser(0, friends={1}), TraceUser(1, friends={0})]
        transactions = [
            tx(0, 1, rating=2.0, n_ratings=3),
            tx(0, 1, rating=0.0, n_ratings=1),
        ]
        stats = rating_stats_by_distance(build_trace(users, transactions))
        assert stats.mean_rating[0] == pytest.approx(6.0 / 4.0)
        assert stats.mean_ratings_per_pair[0] == pytest.approx(4.0)

    def test_rejects_bad_max_hops(self, linear_trace):
        with pytest.raises(ValueError):
            rating_stats_by_distance(linear_trace, max_hops=0)


class TestCategoryRankCdf:
    def test_single_category_buyer(self):
        users = [TraceUser(0), TraceUser(1, sell_categories=frozenset({0}))]
        transactions = [tx(0, 1, category=0)] * 4
        cdf = category_rank_distribution(build_trace(users, transactions))
        assert cdf[0] == pytest.approx(1.0)

    def test_two_categories_split(self):
        users = [TraceUser(0), TraceUser(1)]
        transactions = [tx(0, 1, category=0)] * 3 + [tx(0, 1, category=1)]
        cdf = category_rank_distribution(build_trace(users, transactions))
        assert cdf[0] == pytest.approx(0.75)
        assert cdf[1] == pytest.approx(1.0)

    def test_no_purchases_rejected(self):
        users = [TraceUser(0), TraceUser(1)]
        with pytest.raises(ValueError):
            category_rank_distribution(build_trace(users, []))


class TestSimilarityCdf:
    def test_identical_interests_high_similarity(self):
        users = [
            TraceUser(0),
            TraceUser(1, sell_categories=frozenset({0})),
        ]
        transactions = [tx(0, 1, category=0)]
        edges, cdf = interest_similarity_cdf(build_trace(users, transactions))
        # Buyer's behavioural interest {0} vs seller's {0}: similarity 1.
        assert cdf[-1] == pytest.approx(1.0)
        assert cdf[0] == 0.0

    def test_cdf_monotone(self):
        users = [
            TraceUser(0),
            TraceUser(1, sell_categories=frozenset({0, 1})),
            TraceUser(2, sell_categories=frozenset({3})),
        ]
        transactions = [tx(0, 1, category=0), tx(0, 2, category=3), tx(0, 1, category=1)]
        _, cdf = interest_similarity_cdf(build_trace(users, transactions))
        assert np.all(np.diff(cdf) >= -1e-12)
