"""Tests for trace serialisation."""

import json

import pytest

from repro.trace.generator import MarketplaceConfig, generate_trace
from repro.trace.io import (
    FORMAT_VERSION,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(MarketplaceConfig(n_users=150, n_months=4), seed=8)


class TestRoundTrip:
    def test_dict_round_trip(self, trace):
        restored = trace_from_dict(trace_to_dict(trace))
        assert restored.n_users == trace.n_users
        assert restored.n_transactions == trace.n_transactions
        assert restored.transactions == trace.transactions
        for a, b in zip(restored.users, trace.users):
            assert a.friends == b.friends
            assert a.business_contacts == b.business_contacts
            assert a.reputation == b.reputation
            assert a.sell_categories == b.sell_categories
            assert a.buy_preferences == b.buy_preferences

    def test_file_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        restored = load_trace(path)
        assert restored.transactions == trace.transactions

    def test_file_is_valid_json(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        data = json.loads(path.read_text())
        assert data["format_version"] == FORMAT_VERSION

    def test_analyses_survive_round_trip(self, trace, tmp_path):
        from repro.trace.analysis import business_network_vs_reputation

        path = tmp_path / "trace.json"
        save_trace(trace, path)
        restored = load_trace(path)
        original = business_network_vs_reputation(trace).correlation
        after = business_network_vs_reputation(restored).correlation
        assert after == pytest.approx(original)


class TestValidation:
    def test_rejects_unknown_version(self, trace):
        data = trace_to_dict(trace)
        data["format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            trace_from_dict(data)

    def test_defaults_for_optional_fields(self):
        data = {
            "format_version": FORMAT_VERSION,
            "n_categories": 2,
            "n_months": 1,
            "users": [
                {
                    "user_id": 0,
                    "friends": [],
                    "business_contacts": [1],
                    "reputation": 1.0,
                    "sell_categories": [0],
                    "buy_preferences": [1],
                },
                {
                    "user_id": 1,
                    "friends": [],
                    "business_contacts": [0],
                    "reputation": 1.0,
                    "sell_categories": [1],
                    "buy_preferences": [0],
                },
            ],
            "transactions": [
                {"buyer": 0, "seller": 1, "category": 1, "rating": 2.0, "month": 0}
            ],
        }
        restored = trace_from_dict(data)
        assert restored.transactions[0].n_ratings == 1
        assert restored.transactions[0].counter_rating == 0.0
