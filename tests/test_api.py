"""Public API surface tests: everything README documents is importable."""

import importlib
import inspect

import pytest


PUBLIC_API = {
    "repro": [
        "API_VERSION",
        "Scenario",
        "ScenarioResult",
        "ScenarioSpec",
        "Observability",
        "ReputationService",
        "RatingEvent",
        "InteractionEvent",
        "ChurnEvent",
        "WatermarkEvent",
        "QueryRequest",
        "QueryResult",
        "build_scenario",
        "run_scenario",
        "list_experiments",
        "run_experiment",
    ],
    "repro.api": [
        "API_VERSION",
        "Scenario",
        "ScenarioResult",
        "ScenarioSpec",
        "SystemKind",
        "CollusionKind",
        "RatingEvent",
        "InteractionEvent",
        "ChurnEvent",
        "WatermarkEvent",
        "QueryRequest",
        "QueryResult",
        "ReputationService",
        "build_scenario",
        "run_scenario",
        "list_experiments",
        "run_experiment",
    ],
    "repro.serve": [
        "EVENT_SCHEMA_VERSION",
        "RatingEvent",
        "InteractionEvent",
        "ChurnEvent",
        "WatermarkEvent",
        "QueryRequest",
        "QueryResult",
        "EventDecodeError",
        "encode_event",
        "decode_event",
        "write_event_stream",
        "read_event_stream",
        "RecordedStream",
        "record_scenario_events",
        "ReplayReport",
        "compare_histories",
        "replay_events",
        "replay_recorded",
        "replay_report",
        "ReputationService",
        "ServiceError",
    ],
    "repro.utils": [
        "RngStream",
        "spawn_rng",
        "check_probability",
        "deprecated_alias",
        "deprecated_param",
    ],
    "repro.social": [
        "SocialGraph",
        "AssignedSocialNetwork",
        "Relationship",
        "SocialView",
        "InteractionLedger",
        "InterestProfiles",
        "SocialNetworkBuilder",
        "GraphSummary",
        "summarize_graph",
        "bfs_distances",
        "common_friends",
    ],
    "repro.reputation": [
        "Rating",
        "IntervalRatings",
        "ReputationSystem",
        "RatingLedger",
        "EigenTrust",
        "EBayModel",
        "PowerTrust",
        "GossipTrust",
        "SimilarityWeightedModel",
    ],
    "repro.p2p": [
        "Population",
        "NodeSpec",
        "NodeKind",
        "InterestOverlay",
        "Simulation",
        "SimulationConfig",
        "SelectionPolicy",
        "select_server",
        "MetricsCollector",
        "ChordRing",
        "BatchedQueryEngine",
        "EngineMode",
    ],
    "repro.collusion": [
        "CollusionSchedule",
        "RatingBurst",
        "NoCollusion",
        "PairwiseCollusion",
        "MultiNodeCollusion",
        "MutualMultiNodeCollusion",
        "BadmouthingCollusion",
        "CompositeCollusion",
        "CompromisedPretrustedCollusion",
        "falsify_identical_interests",
        "falsify_single_relationship",
    ],
    "repro.core": [
        "SocialTrust",
        "SocialTrustConfig",
        "GaussianCenter",
        "ClosenessComputer",
        "SimilarityComputer",
        "CollusionDetector",
        "Finding",
        "SuspicionReason",
        "RaterBand",
        "gaussian_weight",
        "combined_weight",
        "overlap_similarity",
        "DistributedSocialTrust",
        "ResourceManager",
    ],
    "repro.trace": [
        "Trace",
        "TraceUser",
        "Transaction",
        "MarketplaceConfig",
        "generate_trace",
        "bfs_crawl",
        "save_trace",
        "load_trace",
        "business_network_vs_reputation",
        "personal_network_vs_reputation",
        "transactions_vs_reputation",
        "rating_stats_by_distance",
        "category_rank_distribution",
        "interest_similarity_cdf",
    ],
    "repro.analysis": [
        "paper_correlation",
        "pearson_correlation",
        "ecdf",
        "percentile_summary",
        "hill_tail_exponent",
        "sparkline",
        "bar_chart",
        "distribution_panel",
    ],
    "repro.experiments": [
        "WorldConfig",
        "SystemKind",
        "CollusionKind",
        "build_world",
        "ExperimentResult",
        "average_runs",
        "get_experiment",
        "list_experiments",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    for name in PUBLIC_API[module_name]:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_all_matches_exports(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    assert exported is not None, f"{module_name} has no __all__"
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_every_public_item_has_docstring():
    for module_name, names in PUBLIC_API.items():
        module = importlib.import_module(module_name)
        for name in names:
            obj = getattr(module, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


@pytest.mark.parametrize("module_name", ["repro", "repro.api", "repro.serve"])
def test_all_audit_importable_and_documented(module_name):
    """Every ``__all__`` export resolves (including lazy ``__getattr__``
    names) and every class/function among them carries a docstring."""
    module = importlib.import_module(module_name)
    for name in module.__all__:
        obj = getattr(module, name)  # raises AttributeError if broken
        # typing aliases (e.g. the Event union) are callable but carry
        # no docstring of their own; audit real classes and functions.
        if isinstance(obj, type) or inspect.isroutine(obj):
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


def test_api_version_is_2():
    import repro

    assert repro.API_VERSION == "2.0"
