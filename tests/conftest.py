"""Shared fixtures for the test suite.

Tests run the paper's machinery at reduced scale (tens of nodes, a few
cycles) — the qualitative shapes the paper reports survive the scale-down
and keep the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SocialTrustConfig
from repro.p2p import InterestOverlay, Population
from repro.social import InteractionLedger, InterestProfiles
from repro.social.generators import paper_social_network
from repro.utils.rng import spawn_rng

N_SMALL = 24
N_INTERESTS = 8
PRETRUSTED = (0, 1)
COLLUDERS = (2, 3, 4, 5)
NORMAL = tuple(range(6, N_SMALL))


@pytest.fixture
def rng():
    return spawn_rng(1234, 0)


@pytest.fixture
def small_population(rng):
    return Population.build(
        N_SMALL,
        rng,
        pretrusted_ids=PRETRUSTED,
        malicious_ids=COLLUDERS,
        n_interests=N_INTERESTS,
        interests_per_node=(1, 4),
        capacity=10,
        malicious_authentic_prob=0.2,
    )


@pytest.fixture
def small_world(rng, small_population):
    """(population, overlay, network, interactions, profiles) bundle."""
    overlay = InterestOverlay(
        [s.interests for s in small_population], N_INTERESTS
    )
    network = paper_social_network(N_SMALL, COLLUDERS, rng)
    interactions = InteractionLedger(N_SMALL)
    profiles = InterestProfiles(N_SMALL, N_INTERESTS)
    for spec in small_population:
        profiles.set_declared(spec.node_id, spec.interests)
    return small_population, overlay, network, interactions, profiles


@pytest.fixture
def default_config():
    return SocialTrustConfig()


def seeded_interactions(ledger: InteractionLedger, rng: np.random.Generator, density: float = 0.3) -> None:
    """Populate a ledger with random interaction counts."""
    n = ledger.n_nodes
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < density:
                ledger.record(i, j, float(rng.integers(1, 6)))
