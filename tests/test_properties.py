"""Cross-module property-based tests on the system's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SocialTrustConfig
from repro.core.closeness import ClosenessComputer
from repro.core.detector import CollusionDetector
from repro.core.similarity import SimilarityComputer
from repro.reputation import EBayModel, EigenTrust, PowerTrust
from repro.reputation.base import IntervalRatings
from repro.social.graph import SocialGraph
from repro.social.interactions import InteractionLedger
from repro.social.interests import InterestProfiles
from repro.utils.rng import spawn_rng

N = 7

ratings_strategy = st.lists(
    st.tuples(
        st.integers(0, N - 1),
        st.integers(0, N - 1),
        st.sampled_from([-1.0, 1.0]),
        st.integers(1, 30),
    ),
    max_size=25,
)


def build_interval(entries):
    iv = IntervalRatings(N)
    for i, j, value, count in entries:
        if i == j:
            continue
        iv.value_sum[i, j] += value * count
        if value >= 0:
            iv.pos_counts[i, j] += count
        else:
            iv.neg_counts[i, j] += count
    return iv


def build_world(seed=0):
    rng = spawn_rng(seed, 0)
    g = SocialGraph(N)
    for i in range(N):
        for j in range(i + 1, N):
            if rng.random() < 0.4:
                g.add_friendship(i, j)
    ledger = InteractionLedger(N)
    for i in range(N):
        for j in range(N):
            if i != j and rng.random() < 0.6:
                ledger.record(i, j, float(rng.integers(1, 5)))
    profiles = InterestProfiles(N, 5)
    for i in range(N):
        k = int(rng.integers(1, 4))
        profiles.set_declared(i, (int(v) for v in rng.choice(5, k, replace=False)))
        profiles.record_request(i, int(rng.integers(0, 5)))
    return g, ledger, profiles


class TestDetectorInvariants:
    @settings(max_examples=40, deadline=None)
    @given(entries=ratings_strategy)
    def test_weights_always_in_unit_interval(self, entries):
        g, ledger, profiles = build_world()
        config = SocialTrustConfig()
        detector = CollusionDetector(
            ClosenessComputer(g, ledger, config),
            SimilarityComputer(profiles, config),
            config,
        )
        iv = build_interval(entries)
        result = detector.analyze(
            iv, np.full(N, 1.0 / N), np.zeros((N, N), dtype=bool)
        )
        assert np.all(result.weights > 0.0)
        assert np.all(result.weights <= 1.0)

    @settings(max_examples=40, deadline=None)
    @given(entries=ratings_strategy)
    def test_adjustment_never_amplifies(self, entries):
        """Scaling by detection weights can only shrink rating magnitudes."""
        g, ledger, profiles = build_world()
        config = SocialTrustConfig()
        detector = CollusionDetector(
            ClosenessComputer(g, ledger, config),
            SimilarityComputer(profiles, config),
            config,
        )
        iv = build_interval(entries)
        result = detector.analyze(
            iv, np.full(N, 1.0 / N), np.zeros((N, N), dtype=bool)
        )
        adjusted = iv.scaled(result.weights)
        assert np.all(np.abs(adjusted.value_sum) <= np.abs(iv.value_sum) + 1e-12)

    @settings(max_examples=40, deadline=None)
    @given(entries=ratings_strategy)
    def test_findings_match_nontrivial_weights(self, entries):
        g, ledger, profiles = build_world()
        config = SocialTrustConfig()
        detector = CollusionDetector(
            ClosenessComputer(g, ledger, config),
            SimilarityComputer(profiles, config),
            config,
        )
        iv = build_interval(entries)
        result = detector.analyze(
            iv, np.full(N, 1.0 / N), np.zeros((N, N), dtype=bool)
        )
        flagged = {(f.rater, f.ratee) for f in result.findings}
        off = np.argwhere(result.weights < 1.0)
        assert {(int(i), int(j)) for i, j in off} <= flagged


class TestReputationInvariants:
    @settings(max_examples=30, deadline=None)
    @given(entries=ratings_strategy)
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: EigenTrust(N, [0], pretrust_weight=0.1),
            lambda: EBayModel(N),
            lambda: EBayModel(N, cycle_aggregation="node_sign"),
            lambda: PowerTrust(N, n_power_nodes=2),
        ],
    )
    def test_reputations_are_distributions(self, factory, entries):
        system = factory()
        system.update(build_interval(entries))
        reps = system.reputations
        assert np.all(reps >= 0)
        assert reps.sum() == pytest.approx(1.0) or reps.sum() == 0.0

    @settings(max_examples=20, deadline=None)
    @given(entries=ratings_strategy)
    def test_update_order_independent_for_ebay_totals(self, entries):
        """eBay per-rater counted ratings are interval-local, so splitting
        an interval in two never *increases* a node's weekly gain."""
        whole = EBayModel(N)
        whole.update(build_interval(entries))
        split = EBayModel(N)
        split.update(build_interval(entries))
        split.update(IntervalRatings(N))
        assert np.allclose(whole.raw_scores, split.raw_scores)
