"""End-to-end observability: a traced collusion run produces spans,
published metrics and audit events that round-trip through JSONL."""

import numpy as np
import pytest

from repro.api import run_scenario
from repro.obs import AuditEvent, Observability, read_jsonl, validate_jsonl

SCENARIO = dict(
    n_nodes=40,
    n_pretrusted=3,
    n_colluders=8,
    system="EigenTrust+SocialTrust",
    collusion="pcm",
    simulation_cycles=3,
    n_interests=8,
    interests_per_node=(1, 4),
    query_cycles=6,
    seed=1,
)


@pytest.fixture(scope="module")
def traced_result():
    return run_scenario(**SCENARIO, observability=True)


class TestTracedRun:
    def test_engine_phase_spans_present(self, traced_result):
        tracer = traced_result.observability.tracer
        for phase in (
            "engine.candidate_build",
            "engine.selection",
            "engine.rating_flush",
            "sim.cycle",
            "reputation.update",
            "detector.analyze",
        ):
            assert tracer.total_duration(phase) > 0.0, f"no time in {phase}"

    def test_phase_spans_nest_under_cycle(self, traced_result):
        tracer = traced_result.observability.tracer
        cycle_ids = {e["span_id"] for e in tracer.spans_named("sim.cycle")}
        update = next(tracer.spans_named("reputation.update"))
        assert update["parent_id"] in cycle_ids
        assert update["depth"] == 1

    def test_metrics_published(self, traced_result):
        metrics = traced_result.observability.metrics
        assert metrics["detector.intervals"].value == SCENARIO["simulation_cycles"]
        assert metrics["detector.pairs_examined"].value > 0
        assert metrics["detector.pairs_damped"].value > 0
        assert (
            metrics["sim.requests.served"].value
            == traced_result.metrics.total_served
        )
        assert (
            metrics["engine.requests.served"].value
            == traced_result.metrics.total_served
        )

    def test_audit_events_record_collusion(self, traced_result):
        audit = traced_result.observability.audit
        assert len(audit.damped()) > 0
        colluders = set(traced_result.colluder_ids)
        damped_pairs = {(e.rater, e.ratee) for e in audit.damped()}
        assert any(r in colluders and s in colluders for r, s in damped_pairs), (
            "no colluder pair was damped in a PCM run"
        )
        for event in audit.damped():
            assert event.behaviors, "damped event without a behaviour class"
            assert event.fired, "damped event without fired thresholds"
            assert 0.0 <= event.weight < 1.0

    def test_examined_count_matches_registry(self, traced_result):
        obs = traced_result.observability
        assert (
            len(obs.audit.events) + obs.audit.n_dropped
            == obs.metrics["detector.pairs_examined"].value
        )

    def test_jsonl_round_trip_preserves_fired_thresholds(
        self, traced_result, tmp_path
    ):
        obs = traced_result.observability
        path = tmp_path / "trace.jsonl"
        n_written = obs.export_jsonl(path)
        counts = validate_jsonl(path)
        assert sum(counts.values()) == n_written
        assert counts["audit"] == len(obs.audit.events)
        restored = [
            AuditEvent.from_dict(e)
            for e in read_jsonl(path)
            if e["type"] == "audit"
        ]
        assert restored == list(obs.audit.events)
        for event in restored:
            if event.decision == "damped":
                assert set(event.fired) >= {"T+"} or set(event.fired) >= {"T-"}

    def test_report_renders(self, traced_result):
        text = traced_result.observability.report()
        assert "== phases ==" in text
        assert "pairs examined" in text


class TestEquivalence:
    def test_observed_run_is_numerically_identical(self):
        plain = run_scenario(**SCENARIO)
        traced = run_scenario(**SCENARIO, observability=True)
        untraced = run_scenario(**SCENARIO, observability=Observability(tracing=False))
        assert np.array_equal(traced.history, plain.history)
        assert np.array_equal(untraced.history, plain.history)

    def test_tracing_disabled_still_audits_and_counts(self):
        result = run_scenario(
            **SCENARIO, observability=Observability(tracing=False)
        )
        obs = result.observability
        assert obs.tracer.events() == ()
        assert len(obs.audit.damped()) > 0
        assert obs.metrics["detector.pairs_examined"].value > 0

    def test_no_observability_by_default(self):
        assert run_scenario(**SCENARIO).observability is None
