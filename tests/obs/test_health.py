"""SLO rules, M-of-N hysteresis, and the health monitor's transitions."""

import pytest

from repro.obs import (
    CRITICAL,
    DEGRADED,
    OK,
    HealthMonitor,
    MetricsRegistry,
    SloRule,
    TelemetrySink,
    default_service_rules,
    read_telemetry,
)


def gauge_snapshot(name: str, value: float) -> dict:
    return {name: {"kind": "gauge", "value": value}}


def counter_snapshot(**values: float) -> dict:
    return {name: {"kind": "counter", "value": v} for name, v in values.items()}


class TestSloRule:
    def test_ceiling_and_floor(self):
        ceiling = SloRule(name="c", metric="m", stat="value", op="<=", threshold=5.0)
        floor = SloRule(name="f", metric="m", stat="value", op=">=", threshold=5.0)
        assert ceiling.breached_by(5.1) and not ceiling.breached_by(5.0)
        assert floor.breached_by(4.9) and not floor.breached_by(5.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(op="=="),
            dict(severity="fatal"),
            dict(m=0),
            dict(m=3, n=2),
            dict(stat="p75"),
            dict(stat="value", denominator="other"),
        ],
    )
    def test_validation(self, kwargs):
        base = dict(name="r", metric="m", stat="value", op="<=", threshold=1.0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            SloRule(**base)

    def test_duplicate_rule_names_rejected(self):
        rule = SloRule(name="r", metric="m", stat="value", op="<=", threshold=1.0)
        with pytest.raises(ValueError, match="duplicate"):
            HealthMonitor([rule, rule])


class TestHysteresis:
    def rule(self, m=2, n=3):
        return SloRule(
            name="depth", metric="q", stat="value", op="<=", threshold=10.0, m=m, n=n
        )

    def test_single_spike_does_not_breach(self):
        monitor = HealthMonitor([self.rule()])
        monitor.observe(gauge_snapshot("q", 50.0))
        assert monitor.state == OK
        monitor.observe(gauge_snapshot("q", 1.0))
        assert monitor.state == OK

    def test_m_of_n_enters_and_clears(self):
        monitor = HealthMonitor([self.rule()])
        states = []
        for value in (50.0, 50.0, 1.0, 1.0, 1.0):
            states.append(monitor.observe(gauge_snapshot("q", value)).state)
        # Breach after the 2nd bad interval, clear once 2-of-3 are good.
        assert states == [OK, DEGRADED, DEGRADED, OK, OK]

    def test_transitions_recorded_with_reasons(self):
        monitor = HealthMonitor([self.rule()])
        for value in (50.0, 50.0, 1.0, 1.0):
            monitor.observe(gauge_snapshot("q", value))
        scopes = [(t["scope"], t["from"], t["to"]) for t in monitor.transitions]
        assert scopes == [
            ("rule", OK, DEGRADED),
            ("overall", OK, DEGRADED),
            ("rule", DEGRADED, OK),
            ("overall", DEGRADED, OK),
        ]
        assert "exceeded" in monitor.transitions[0]["reason"]


class TestSeverity:
    def test_critical_rule_drives_overall_state(self):
        rules = [
            SloRule(name="soft", metric="a", stat="value", op="<=", threshold=1.0),
            SloRule(
                name="hard",
                metric="b",
                stat="value",
                op="<=",
                threshold=1.0,
                severity=CRITICAL,
            ),
        ]
        monitor = HealthMonitor(rules)
        snap = {**gauge_snapshot("a", 5.0), **gauge_snapshot("b", 5.0)}
        assert monitor.observe(snap).state == CRITICAL
        snap = {**gauge_snapshot("a", 5.0), **gauge_snapshot("b", 0.0)}
        assert monitor.observe(snap).state == DEGRADED


class TestDeltaAndRatio:
    def test_delta_needs_two_observations(self):
        rule = SloRule(name="r", metric="c", stat="delta", op="<=", threshold=5.0)
        monitor = HealthMonitor([rule])
        report = monitor.observe(counter_snapshot(c=100.0))
        assert report.rules[0]["last_value"] is None
        report = monitor.observe(counter_snapshot(c=103.0))
        assert report.rules[0]["last_value"] == pytest.approx(3.0)
        assert monitor.state == OK

    def test_ratio_of_deltas(self):
        rule = SloRule(
            name="shed-rate",
            metric="shed",
            stat="delta",
            op="<=",
            threshold=0.01,
            denominator="total",
            m=1,
            n=1,
        )
        monitor = HealthMonitor([rule])
        monitor.observe(counter_snapshot(shed=0.0, total=0.0))
        report = monitor.observe(counter_snapshot(shed=0.0, total=100.0))
        assert report.rules[0]["last_value"] == 0.0
        report = monitor.observe(counter_snapshot(shed=50.0, total=200.0))
        assert report.rules[0]["last_value"] == pytest.approx(0.5)
        assert monitor.state == DEGRADED

    def test_zero_traffic_window_scores_zero(self):
        rule = SloRule(
            name="r", metric="shed", stat="delta", op="<=", threshold=0.01,
            denominator="total",
        )
        monitor = HealthMonitor([rule])
        monitor.observe(counter_snapshot(shed=0.0, total=100.0))
        report = monitor.observe(counter_snapshot(shed=0.0, total=100.0))
        assert report.rules[0]["last_value"] == 0.0

    def test_shed_without_traffic_is_infinite(self):
        rule = SloRule(
            name="r", metric="shed", stat="delta", op="<=", threshold=0.01,
            denominator="total",
        )
        monitor = HealthMonitor([rule])
        monitor.observe(counter_snapshot(shed=0.0, total=100.0))
        report = monitor.observe(counter_snapshot(shed=5.0, total=100.0))
        assert report.rules[0]["last_value"] == float("inf")
        assert monitor.state == DEGRADED


class TestMissingMetrics:
    def test_absent_metric_is_dormant_not_breached(self):
        rule = SloRule(
            name="drift", metric="sparse.cache.drift", stat="value", op="<=",
            threshold=64,
        )
        monitor = HealthMonitor([rule])
        for _ in range(5):
            report = monitor.observe({})
        assert report.state == OK
        assert report.rules[0]["last_value"] is None
        assert monitor.transitions == []

    def test_histogram_stat_on_histogram_row(self):
        rule = SloRule(
            name="p99", metric="lat", stat="p99", op="<=", threshold=0.005
        )
        monitor = HealthMonitor([rule])
        snap = {"lat": {"kind": "histogram", "p99": 0.5, "count": 9.0}}
        assert monitor.observe(snap).state == DEGRADED

    def test_wrong_stat_for_kind_raises(self):
        rule = SloRule(name="r", metric="g", stat="p99", op="<=", threshold=1.0)
        monitor = HealthMonitor([rule])
        with pytest.raises(ValueError, match="cannot be read"):
            monitor.observe(gauge_snapshot("g", 1.0))


class TestReplayAndSink:
    def test_replay_recorded_series(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        reg = MetricsRegistry()
        flood = reg.gauge("serve.flood.top_rater_share")
        with TelemetrySink(path) as sink:
            for interval, share in enumerate((0.1, 0.9, 0.9, 0.9, 0.1, 0.1, 0.1)):
                flood.set(share)
                sink.emit(reg, interval=interval)
        monitor = HealthMonitor(default_service_rules())
        final = monitor.replay(read_telemetry(path))
        assert final.state == OK  # flood healed by the end
        overall = [
            (t["from"], t["to"])
            for t in monitor.transitions
            if t["scope"] == "overall"
        ]
        assert overall == [(OK, DEGRADED), (DEGRADED, OK)]

    def test_transitions_stream_to_sink(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        sink = TelemetrySink(path)
        rule = SloRule(name="r", metric="g", stat="value", op="<=", threshold=1.0)
        monitor = HealthMonitor([rule], sink=sink)
        monitor.observe(gauge_snapshot("g", 9.0))
        sink.close()
        from repro.obs.schema import validate_jsonl

        assert validate_jsonl(path) == {"health": 2}

    def test_report_shape(self):
        monitor = HealthMonitor(default_service_rules(min_events_per_sec=10.0))
        monitor.observe({})
        report = monitor.report()
        assert report["state"] == OK
        assert report["intervals_observed"] == 1
        names = {r["name"] for r in report["rules"]}
        assert {
            "query-p99",
            "queue-depth",
            "shed-rate",
            "flood-share",
            "degraded-ladder",
            "cache-drift",
            "events-per-sec",
        } <= names
