"""Tests for the phases/metrics/audit text report."""

from repro.obs import Observability, render_file_report
from repro.obs.report import phase_table


class TestPhaseTable:
    def test_aggregates_by_name_sorted_by_total(self):
        spans = [
            {"name": "a", "duration": 0.1},
            {"name": "a", "duration": 0.3},
            {"name": "b", "duration": 1.0},
        ]
        table = phase_table(spans)
        assert [row["name"] for row in table] == ["b", "a"]
        a = table[1]
        assert a["count"] == 2
        assert a["total_s"] == 0.4
        assert a["mean_s"] == 0.2
        assert a["max_s"] == 0.3

    def test_empty(self):
        assert phase_table([]) == []


class TestRenderReport:
    def test_sections_present(self):
        obs = Observability()
        with obs.tracer.span("engine.selection"):
            pass
        obs.metrics.counter("detector.intervals").inc()
        text = obs.report(title="my report")
        assert text.startswith("my report")
        assert "== phases ==" in text
        assert "== metrics ==" in text
        assert "== detector audit ==" in text
        assert "engine.selection" in text
        assert "detector.intervals" in text
        assert "[counter] 1" in text

    def test_empty_bundle_renders_placeholders(self):
        text = Observability(tracing=False).report()
        assert "(no spans recorded" in text
        assert "(no metrics recorded)" in text
        assert "(no detector audit events" in text

    def test_file_report_matches_live_sections(self, tmp_path):
        obs = Observability()
        with obs.tracer.span("phase.x"):
            pass
        obs.metrics.gauge("g").set(4)
        path = tmp_path / "trace.jsonl"
        obs.export_jsonl(path)
        text = render_file_report(path)
        assert "phase.x" in text
        assert "[gauge] 4" in text
        assert "== detector audit ==" in text
