"""Prometheus exposition rendering/parsing and the JSONL telemetry sink."""

import json
import math

import pytest

from repro.obs import (
    MetricsRegistry,
    PrometheusParseError,
    QUERY_LATENCY_BUCKETS,
    TelemetrySink,
    parse_prometheus,
    prometheus_name,
    read_telemetry,
    render_prometheus,
)
from repro.obs.schema import SchemaError, validate_event


def loaded_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("serve.events.rating").inc(40)
    reg.counter("serve.events.total").inc(42)
    reg.gauge("serve.queue.depth").set(7)
    h = reg.histogram("serve.query.latency", buckets=QUERY_LATENCY_BUCKETS)
    for value in (2e-6, 8e-6, 3e-4, 0.02):
        h.observe(value)
    return reg


class TestNames:
    def test_dotted_path_flattens(self):
        assert prometheus_name("serve.query.latency") == "repro_serve_query_latency"

    def test_namespace_optional(self):
        assert prometheus_name("a.b", namespace="") == "a_b"

    def test_hostile_characters_sanitized(self):
        name = prometheus_name("weird metric-name!")
        assert name == "repro_weird_metric_name_"


class TestRender:
    def test_counter_total_suffix(self):
        text = render_prometheus(loaded_registry())
        assert "repro_serve_events_rating_total 40" in text

    def test_counter_total_suffix_not_doubled(self):
        text = render_prometheus(loaded_registry())
        assert "repro_serve_events_total 42" in text
        assert "total_total" not in text

    def test_gauge_plain(self):
        text = render_prometheus(loaded_registry())
        assert "repro_serve_queue_depth 7" in text

    def test_histogram_buckets_cumulative_end_inf(self):
        text = render_prometheus(loaded_registry())
        assert 'repro_serve_query_latency_bucket{le="+Inf"} 4' in text
        assert "repro_serve_query_latency_count 4" in text
        assert "repro_serve_query_latency_sum" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            render_prometheus({"x": {"kind": "mystery", "value": 1.0}})


class TestRoundTrip:
    def test_parse_recovers_families_and_values(self):
        reg = loaded_registry()
        families = parse_prometheus(render_prometheus(reg))
        assert families["repro_serve_events_rating_total"]["type"] == "counter"
        assert families["repro_serve_queue_depth"]["samples"][0][2] == 7.0
        hist = families["repro_serve_query_latency"]
        buckets = [s for s in hist["samples"] if s[0].endswith("_bucket")]
        assert len(buckets) == len(QUERY_LATENCY_BUCKETS) + 1
        assert dict(buckets[-1][1])["le"] == "+Inf"

    def test_snapshot_renders_identically_to_live_registry(self):
        # The JSONL time series stores as_dict() snapshots: rendering one
        # (after a JSON round trip) must match rendering the live registry.
        reg = loaded_registry()
        snapshot = json.loads(json.dumps(reg.as_dict()))
        assert render_prometheus(snapshot) == render_prometheus(reg)

    def test_non_cumulative_buckets_rejected(self):
        text = (
            "# TYPE m histogram\n"
            'm_bucket{le="1.0"} 5\n'
            'm_bucket{le="+Inf"} 3\n'
            "m_sum 1.0\n"
            "m_count 3\n"
        )
        with pytest.raises(PrometheusParseError, match="cumulative"):
            parse_prometheus(text)

    def test_missing_inf_bucket_rejected(self):
        text = (
            "# TYPE m histogram\n"
            'm_bucket{le="1.0"} 5\n'
            "m_sum 1.0\n"
            "m_count 5\n"
        )
        with pytest.raises(PrometheusParseError, match=r"\+Inf"):
            parse_prometheus(text)

    def test_inf_bucket_count_mismatch_rejected(self):
        text = (
            "# TYPE m histogram\n"
            'm_bucket{le="+Inf"} 5\n'
            "m_sum 1.0\n"
            "m_count 6\n"
        )
        with pytest.raises(PrometheusParseError, match="_count"):
            parse_prometheus(text)

    def test_sample_before_type_rejected(self):
        with pytest.raises(PrometheusParseError, match="precedes"):
            parse_prometheus("orphan 1.0\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(PrometheusParseError, match="unparseable"):
            parse_prometheus("# TYPE m gauge\nm one_point_five\n")


class TestTelemetrySink:
    def test_emit_appends_validated_lines(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        reg = loaded_registry()
        with TelemetrySink(path) as sink:
            sink.emit(reg, interval=1, events_applied=10)
            sink.emit(reg, interval=2, events_applied=20)
        events = read_telemetry(path)
        assert [e["interval"] for e in events] == [1, 2]
        assert all(validate_event(e) == "telemetry" for e in events)

    def test_every_subsamples_watermarks(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        reg = loaded_registry()
        with TelemetrySink(path, every=3) as sink:
            written = [
                sink.emit(reg, interval=k) is not None for k in range(1, 8)
            ]
        assert written == [False, False, True, False, False, True, False]
        assert len(read_telemetry(path)) == 2

    def test_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            TelemetrySink(tmp_path / "x.jsonl", every=0)

    def test_append_mode_extends_series(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        reg = loaded_registry()
        with TelemetrySink(path) as sink:
            sink.emit(reg, interval=1)
        with TelemetrySink(path) as sink:
            sink.emit(reg, interval=2)
        assert [e["interval"] for e in read_telemetry(path)] == [1, 2]

    def test_health_events_share_the_file(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        reg = loaded_registry()
        with TelemetrySink(path) as sink:
            sink.emit(reg, interval=1)
            sink.append(
                {
                    "type": "health",
                    "scope": "overall",
                    "rule": "",
                    "from": "ok",
                    "to": "degraded",
                    "interval": 1,
                    "value": None,
                    "threshold": None,
                    "reason": "rules in breach: flood-share",
                }
            )
        # read_telemetry filters; the raw file holds both, both valid.
        from repro.obs.schema import validate_jsonl

        counts = validate_jsonl(path)
        assert counts == {"telemetry": 1, "health": 1}
        assert len(read_telemetry(path)) == 1

    def test_rejects_malformed_lines_on_read(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text('{"type":"telemetry","interval":-1,"events_applied":0,"metrics":{}}\n')
        with pytest.raises(SchemaError, match="non-negative"):
            read_telemetry(path)

    def test_histogram_snapshot_survives_json_infinity(self, tmp_path):
        # +Inf bucket bounds are stringified in as_dict, so the JSONL file
        # (which nulls non-finite floats) still re-renders full buckets.
        path = tmp_path / "telemetry.jsonl"
        reg = loaded_registry()
        with TelemetrySink(path) as sink:
            sink.emit(reg, interval=1)
        snapshot = read_telemetry(path)[0]["metrics"]
        text = render_prometheus(snapshot)
        assert 'le="+Inf"' in text
        assert not math.isinf(
            json.loads(json.dumps(snapshot["serve.query.latency"]["count"]))
        )
