"""Tests for the span tracer: nesting, timing, attributes, null no-op."""

import math
import time

from repro.obs import NULL_TRACER, NullTracer, Tracer


class TestSpanBasics:
    def test_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("work"):
            time.sleep(0.002)
        (event,) = tracer.events()
        assert event["type"] == "span"
        assert event["name"] == "work"
        assert event["duration"] >= 0.002
        assert event["start"] > 0.0

    def test_attributes_at_creation_and_set(self):
        tracer = Tracer()
        with tracer.span("phase", cycle=3) as span:
            span.set("served", 17)
        (event,) = tracer.events()
        assert event["attributes"] == {"cycle": 3, "served": 17}

    def test_span_ids_increment(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = [e["span_id"] for e in tracer.events()]
        assert ids == [0, 1]


class TestNesting:
    def test_child_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, outer_event = tracer.events()
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer.span_id
        assert inner["depth"] == 1
        assert outer_event["depth"] == 0
        assert outer_event["parent_id"] is None

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, _ = tracer.events()
        assert a["parent_id"] == b["parent_id"] == outer.span_id
        assert a["depth"] == b["depth"] == 1

    def test_completion_order_is_inner_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [e["name"] for e in tracer.events()] == ["inner", "outer"]


class TestRecord:
    def test_record_premeasured_duration(self):
        tracer = Tracer()
        tracer.record("engine.cache_patch", 0.125, cycles=4)
        (event,) = tracer.events()
        assert event["duration"] == 0.125
        assert event["attributes"] == {"cycles": 4}
        assert math.isnan(event["start"])

    def test_record_nests_under_open_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.record("sub", 0.01)
        sub = next(tracer.spans_named("sub"))
        assert sub["parent_id"] == outer.span_id
        assert sub["depth"] == 1


class TestInspection:
    def test_total_duration_sums_by_name(self):
        tracer = Tracer()
        tracer.record("x", 0.25)
        tracer.record("x", 0.5)
        tracer.record("y", 1.0)
        assert tracer.total_duration("x") == 0.75
        assert tracer.n_spans == 3

    def test_clear(self):
        tracer = Tracer()
        tracer.record("x", 1.0)
        tracer.clear()
        assert tracer.events() == ()
        assert tracer.n_spans == 0


class TestNullTracer:
    def test_null_tracer_stores_nothing(self):
        tracer = NullTracer()
        with tracer.span("work", a=1) as span:
            span.set("b", 2)
        tracer.record("x", 1.0)
        assert tracer.events() == ()
        assert tracer.n_spans == 0
        assert tracer.total_duration("work") == 0.0
        assert list(tracer.spans_named("work")) == []

    def test_shared_singleton_span_is_reused(self):
        first = NULL_TRACER.span("a")
        second = NULL_TRACER.span("b")
        assert first is second

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NULL_TRACER.enabled is False
