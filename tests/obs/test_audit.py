"""Tests for the detector audit log and its event round-tripping."""

import pytest

from repro.obs import AuditEvent, DetectorAuditLog


def _event(decision="damped", behaviors=("B2",), weight=0.1, **overrides):
    payload = dict(
        interval=3,
        rater=5,
        ratee=9,
        decision=decision,
        behaviors=tuple(behaviors),
        fired=("T+", "TR", "Tch"),
        closeness=0.42,
        similarity=0.08,
        weight=weight,
        pos_count=7.0,
        neg_count=0.0,
        thresholds={"T+": 2.0, "T-": 2.0, "TR": 0.05},
    )
    payload.update(overrides)
    return AuditEvent(**payload)


class TestAuditEvent:
    def test_to_dict_tags_type(self):
        data = _event().to_dict()
        assert data["type"] == "audit"
        assert data["behaviors"] == ["B2"]
        assert data["fired"] == ["T+", "TR", "Tch"]

    def test_round_trip_field_for_field(self):
        original = _event()
        restored = AuditEvent.from_dict(original.to_dict())
        assert restored == original
        assert isinstance(restored.behaviors, tuple)
        assert isinstance(restored.fired, tuple)


class TestDetectorAuditLog:
    def test_record_and_partition(self):
        log = DetectorAuditLog()
        log.record(_event())
        log.record(_event(decision="accepted", behaviors=(), weight=1.0))
        assert len(log) == 2
        assert len(log.damped()) == 1
        assert len(log.accepted()) == 1
        assert log.damped()[0].decision == "damped"

    def test_by_behavior_counts_multi_class_events_in_each(self):
        log = DetectorAuditLog()
        log.record(_event(behaviors=("B2", "B3")))
        log.record(_event(behaviors=("B3",)))
        counts = log.by_behavior()
        assert counts == {"B1": 0, "B2": 1, "B3": 2, "B4": 0}

    def test_cap_drops_and_counts(self):
        log = DetectorAuditLog(max_events=2)
        for _ in range(5):
            log.record(_event())
        assert len(log) == 2
        assert log.n_dropped == 3

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            DetectorAuditLog(max_events=0)

    def test_to_events_and_clear(self):
        log = DetectorAuditLog()
        log.record(_event())
        (event,) = log.to_events()
        assert event["type"] == "audit"
        log.clear()
        assert len(log) == 0
        assert log.n_dropped == 0
