"""Tests for the JSONL schema: validation, export/read round trip."""

import math

import pytest

from repro.obs import SchemaError, read_jsonl, to_jsonl, validate_event, validate_jsonl


def _span(**overrides):
    event = {
        "type": "span",
        "name": "engine.selection",
        "span_id": 0,
        "parent_id": None,
        "depth": 0,
        "start": 12.5,
        "duration": 0.25,
        "attributes": {"served": 10},
    }
    event.update(overrides)
    return event


def _audit(**overrides):
    event = {
        "type": "audit",
        "interval": 1,
        "rater": 4,
        "ratee": 7,
        "decision": "damped",
        "behaviors": ["B2", "B3"],
        "fired": ["T+", "TR", "Tch", "Tsl"],
        "closeness": 0.5,
        "similarity": 0.01,
        "weight": 0.0,
        "pos_count": 9.0,
        "neg_count": 0.0,
        "thresholds": {"T+": 2.0, "TR": 0.05},
    }
    event.update(overrides)
    return event


class TestValidateEvent:
    def test_valid_span_audit_metrics(self):
        assert validate_event(_span()) == "span"
        assert validate_event(_audit()) == "audit"
        assert validate_event({"type": "metrics", "metrics": {}}) == "metrics"

    def test_unknown_type(self):
        with pytest.raises(SchemaError, match="unknown event type"):
            validate_event({"type": "bogus"})

    def test_non_dict(self):
        with pytest.raises(SchemaError, match="must be an object"):
            validate_event([1, 2])

    def test_missing_field(self):
        event = _span()
        del event["duration"]
        with pytest.raises(SchemaError, match="missing field 'duration'"):
            validate_event(event)

    def test_unknown_field(self):
        with pytest.raises(SchemaError, match="unknown field"):
            validate_event(_span(extra=1))

    def test_bool_rejected_where_number_expected(self):
        with pytest.raises(SchemaError, match="must not be boolean"):
            validate_event(_span(duration=True))

    def test_negative_duration(self):
        with pytest.raises(SchemaError, match="non-negative"):
            validate_event(_span(duration=-0.1))

    def test_unknown_decision(self):
        with pytest.raises(SchemaError, match="unknown decision"):
            validate_event(_audit(decision="maybe"))

    def test_unknown_behavior(self):
        with pytest.raises(SchemaError, match="behaviour class"):
            validate_event(_audit(behaviors=["B9"]))

    def test_unknown_threshold(self):
        with pytest.raises(SchemaError, match="threshold name"):
            validate_event(_audit(fired=["T*"]))

    def test_damped_requires_behavior(self):
        with pytest.raises(SchemaError, match="at least one behaviour"):
            validate_event(_audit(behaviors=[]))

    def test_accepted_without_behavior_is_fine(self):
        assert validate_event(_audit(decision="accepted", behaviors=[])) == "audit"


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [_span(), _audit(), {"type": "metrics", "metrics": {}}]
        assert to_jsonl(events, path) == 3
        assert read_jsonl(path) == events

    def test_nan_start_exported_as_null_and_restored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        to_jsonl([_span(start=float("nan"))], path)
        assert '"start":null' in path.read_text()
        (event,) = read_jsonl(path)
        assert math.isnan(event["start"])
        # A null start must still validate as a (synthetic) span.
        assert validate_event(event) == "span"

    def test_null_start_not_injected_into_other_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        to_jsonl([_audit()], path)
        (event,) = read_jsonl(path)
        assert "start" not in event

    def test_infinite_threshold_sanitized(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        to_jsonl([_audit(thresholds={"T+": float("inf")})], path)
        (event,) = read_jsonl(path)
        assert event["thresholds"]["T+"] is None

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "metrics", "metrics": {}}\nnot json\n')
        with pytest.raises(SchemaError, match="line 2"):
            read_jsonl(path)


class TestValidateJsonl:
    def test_counts_by_type(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        to_jsonl(
            [_span(), _span(span_id=1), _audit(), {"type": "metrics", "metrics": {}}],
            path,
        )
        assert validate_jsonl(path) == {"span": 2, "audit": 1, "metrics": 1}

    def test_names_offending_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        to_jsonl([_span(), _audit(decision="bogus")], path)
        with pytest.raises(SchemaError, match="line 2"):
            validate_jsonl(path)
