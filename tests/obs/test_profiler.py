"""Phase profiler: self vs cumulative attribution and the top-N table."""

import pytest

from repro.obs import PhaseStat, Tracer, profile_file, profile_spans, render_top
from repro.obs.schema import to_jsonl


def span(name, span_id, parent_id, duration, depth=0):
    return {
        "type": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "depth": depth,
        "start": 0.0,
        "duration": duration,
        "attributes": {},
    }


class TestProfileSpans:
    def test_self_time_subtracts_direct_children(self):
        spans = [
            span("cycle", 1, None, 1.0),
            span("build", 2, 1, 0.6, depth=1),
            span("analyze", 3, 1, 0.3, depth=1),
            span("inner", 4, 2, 0.5, depth=2),
        ]
        by_name = {s.name: s for s in profile_spans(spans)}
        assert by_name["cycle"].cumulative_s == 1.0
        assert by_name["cycle"].self_s == pytest.approx(0.1)  # 1.0 - 0.6 - 0.3
        assert by_name["build"].self_s == pytest.approx(0.1)  # 0.6 - 0.5
        assert by_name["analyze"].self_s == pytest.approx(0.3)
        assert by_name["inner"].self_s == pytest.approx(0.5)

    def test_sorted_by_self_time_descending(self):
        spans = [
            span("a", 1, None, 0.1),
            span("b", 2, None, 0.9),
            span("c", 3, None, 0.5),
        ]
        assert [s.name for s in profile_spans(spans)] == ["b", "c", "a"]

    def test_repeated_phases_aggregate(self):
        spans = [span("tick", i, None, 0.25) for i in range(1, 5)]
        (stat,) = profile_spans(spans)
        assert stat.calls == 4
        assert stat.cumulative_s == 1.0
        assert stat.mean_s == 0.25
        assert stat.max_s == 0.25

    def test_negative_self_time_clamped(self):
        # Pre-measured child spans can overlap their parent's window;
        # attribution never goes below zero.
        spans = [
            span("parent", 1, None, 0.1),
            span("child", 2, 1, 0.5, depth=1),
        ]
        by_name = {s.name: s for s in profile_spans(spans)}
        assert by_name["parent"].self_s == 0.0

    def test_non_span_events_ignored(self):
        events = [span("a", 1, None, 0.5), {"type": "metrics", "metrics": {}}]
        assert len(profile_spans(events)) == 1

    def test_empty_input(self):
        assert profile_spans([]) == []
        assert "no spans" in render_top([])


class TestRenderTop:
    def test_table_rows_and_truncation(self):
        stats = profile_spans(
            [span(f"phase{i}", i + 1, None, 0.1 * (i + 1)) for i in range(12)]
        )
        table = render_top(stats, top=5)
        assert "phase11" in table  # hottest phase shown
        assert "phase0" not in table  # cold tail truncated...
        assert "7 more phases" in table  # ...but accounted for

    def test_mean_property_empty(self):
        stat = PhaseStat(name="x", calls=0, cumulative_s=0.0, self_s=0.0, max_s=0.0)
        assert stat.mean_s == 0.0
        assert stat.to_dict()["mean_s"] == 0.0


class TestProfileFile:
    def test_profile_exported_trace(self, tmp_path):
        tracer = Tracer()
        with tracer.span("cycle"):
            with tracer.span("build"):
                pass
        path = tmp_path / "trace.jsonl"
        to_jsonl(tracer.events(), path)
        stats, table = profile_file(path)
        assert {s.name for s in stats} == {"cycle", "build"}
        assert str(path) in table

    def test_live_tracer_events_profile_directly(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in profile_spans(tracer.events())}
        assert by_name["outer"].cumulative_s >= by_name["inner"].cumulative_s
        assert by_name["outer"].self_s <= by_name["outer"].cumulative_s
