"""Tests for the metrics registry: counters, gauges, histogram percentiles."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.registry import DEFAULT_BUCKETS


class TestCounter:
    def test_inc(self):
        c = Counter("requests")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        c = Counter("requests")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("online")
        g.set(10)
        g.inc(2)
        g.dec()
        assert g.value == 11.0


class TestHistogram:
    def test_count_sum_mean_min_max(self):
        h = Histogram("latency", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 8.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(13.0)
        assert h.mean == pytest.approx(3.25)
        assert h.min == 0.5
        assert h.max == 8.0

    def test_empty_histogram_is_zero(self):
        h = Histogram("latency")
        assert h.mean == 0.0
        assert h.min == 0.0
        assert h.max == 0.0
        assert h.percentile(50) == 0.0

    def test_overflow_bucket(self):
        h = Histogram("latency", buckets=(1.0,))
        h.observe(100.0)
        assert h.counts == [0, 1]

    def test_percentile_monotone_and_bounded(self):
        h = Histogram("latency", buckets=(0.001, 0.01, 0.1, 1.0))
        for i in range(100):
            h.observe(0.001 * (i + 1))
        previous = -1.0
        for q in (0, 10, 25, 50, 75, 90, 99, 100):
            p = h.percentile(q)
            assert h.min <= p <= h.max
            assert p >= previous
            previous = p
        # Half the observations sit at or below 0.05; p50 lands nearby.
        assert h.percentile(50) == pytest.approx(0.05, rel=0.35)

    def test_percentile_range_checked(self):
        h = Histogram("latency")
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=())
        with pytest.raises(ValueError):
            Histogram("x", buckets=(2.0, 1.0))

    def test_percentile_extremes_hit_min_and_max(self):
        h = Histogram("latency", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        assert h.percentile(0) == 0.5
        assert h.percentile(100) == 3.0

    def test_percentile_all_observations_beyond_last_edge(self):
        h = Histogram("latency", buckets=(1.0,))
        for v in (10.0, 20.0, 30.0):
            h.observe(v)
        for q in (0, 50, 100):
            assert 10.0 <= h.percentile(q) <= 30.0
        assert h.percentile(100) == 30.0

    def test_percentile_single_overflow_observation(self):
        h = Histogram("latency", buckets=(1.0,))
        h.observe(5.0)
        assert h.percentile(50) == 5.0

    def test_bucket_counts_cumulative_ending_inf(self):
        import math

        h = Histogram("latency", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        assert h.bucket_counts() == ((1.0, 1), (2.0, 2), (math.inf, 3))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_histogram_buckets_configure_first_registration(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 2.0))
        assert h.buckets == (1.0, 2.0)
        # None and the identical layout return the same instrument.
        assert reg.histogram("h") is h
        assert reg.histogram("h", buckets=(1.0, 2.0)) is h

    def test_histogram_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="conflicting"):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_histogram_default_then_explicit_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h")  # DEFAULT_BUCKETS
        with pytest.raises(ValueError, match="conflicting"):
            reg.histogram("h", buckets=(1.0, 2.0))

    def test_names_sorted_and_contains(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ("a", "b")
        assert "a" in reg
        assert "z" not in reg
        assert isinstance(reg["a"], Gauge)

    def test_as_dict_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        h = reg.histogram("h", buckets=DEFAULT_BUCKETS)
        h.observe(0.01)
        snap = reg.as_dict()
        assert snap["c"] == {"kind": "counter", "value": 3.0}
        assert snap["g"] == {"kind": "gauge", "value": 7.0}
        assert snap["h"]["kind"] == "histogram"
        assert snap["h"]["count"] == 1.0
        assert set(snap["h"]) >= {"sum", "mean", "min", "max", "p50", "p90", "p99"}

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.clear()
        assert reg.names() == ()
