"""Golden-trace recorder/checker: round-trips, determinism, divergence
reporting, and the flipped-threshold mutation net."""

from pathlib import Path

import pytest

from repro.qa import (
    GOLDEN_SCENARIOS,
    GoldenScenario,
    check_golden,
    diff_traces,
    load_trace,
    record_trace,
    write_trace,
)
from repro.qa.golden import FORMAT_VERSION

#: The checked-in goldens, resolved repo-layout-relative so the tests do
#: not depend on the pytest invocation directory.
GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

#: A fast variant of the checked-in eigentrust scenario for tests that
#: record in-process (3 cycles instead of 8).
FAST_SCENARIO = GoldenScenario(
    name="fast_eigentrust_pcm",
    build=dict(
        GOLDEN_SCENARIOS["eigentrust_pcm"].build,
        simulation_cycles=3,
    ),
    cycles=3,
    seed=99,
)


@pytest.fixture(scope="module")
def fast_trace():
    return record_trace(FAST_SCENARIO)


class TestRecordTrace:
    def test_structure(self, fast_trace):
        header, *body, summary = fast_trace
        assert header["type"] == "header"
        assert header["format_version"] == FORMAT_VERSION
        assert header["name"] == FAST_SCENARIO.name
        assert header["system"] == "EigenTrust+SocialTrust"
        assert summary["type"] == "summary"
        cycles = [line for line in body if line["type"] == "cycle"]
        assert [c["cycle"] for c in cycles] == list(range(FAST_SCENARIO.cycles))

    def test_cycle_payload(self, fast_trace):
        cycle = fast_trace[1]
        n = FAST_SCENARIO.build["n_nodes"]
        assert len(cycle["reputations"]) == n
        assert set(cycle["detector"]["thresholds"]) == {
            "T+", "T-", "TR", "Tcl", "Tch", "Tsl", "Tsh"
        }
        for digest in (cycle["omega_c"], cycle["omega_s"]):
            assert set(digest) == {"sha256", "sum", "max", "nonzeros"}
            assert len(digest["sha256"]) == 64

    def test_findings_shape(self, fast_trace):
        findings = [
            f
            for line in fast_trace
            if line["type"] == "cycle"
            for f in line["detector"]["findings"]
        ]
        for finding in findings:
            assert set(finding) == {
                "rater", "ratee", "reasons", "closeness", "similarity", "weight"
            }
            assert 0.0 <= finding["weight"] <= 1.0

    def test_summary_totals(self, fast_trace):
        summary = fast_trace[-1]
        assert summary["total_served"] + summary["unserved"] == summary["total_requests"]


class TestRoundTrip:
    def test_write_load_identity(self, fast_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert write_trace(fast_trace, path) == len(fast_trace)
        assert load_trace(path) == fast_trace

    def test_non_finite_floats_survive(self, tmp_path):
        lines = [
            {"type": "header", "format_version": FORMAT_VERSION, "name": "x",
             "seed": 0, "cycles": 1, "build": {}, "system": "s"},
            {"type": "cycle", "cycle": 0, "value": float("inf"),
             "other": float("nan")},
        ]
        path = tmp_path / "inf.jsonl"
        write_trace(lines, path)
        loaded = load_trace(path)
        assert loaded[1]["value"] == float("inf")
        assert loaded[1]["other"] != loaded[1]["other"]  # NaN

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "header"}\n{broken\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            load_trace(path)

    def test_load_rejects_missing_header(self, tmp_path):
        path = tmp_path / "noheader.jsonl"
        path.write_text('{"type": "cycle", "cycle": 0}\n')
        with pytest.raises(ValueError, match="missing header"):
            load_trace(path)

    def test_load_rejects_future_format(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"type": "header", "format_version": 999}\n')
        with pytest.raises(ValueError, match="format version"):
            load_trace(path)


class TestStrictDeterminism:
    def test_double_record_is_bit_identical(self, fast_trace):
        replay = record_trace(FAST_SCENARIO)
        diff = diff_traces(fast_trace, replay, mode="strict")
        assert diff.ok, diff.render()

    def test_check_golden_strict_same_machine(self, fast_trace, tmp_path):
        path = tmp_path / FAST_SCENARIO.filename
        write_trace(fast_trace, path)
        diff = check_golden(path, mode="strict")
        assert diff.ok, diff.render()


class TestCheckedInGoldens:
    @pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
    def test_replay_matches_tolerance(self, name):
        # Tolerance mode here: the checked-in bytes came from one
        # machine's BLAS; CI's golden-check job does the same-machine
        # strict record-then-check pass.
        diff = check_golden(GOLDEN_DIR / f"{name}.jsonl", mode="tolerance")
        assert diff.ok, diff.render()


class TestDiffReporting:
    def test_tampered_value_is_located(self, fast_trace):
        import copy

        tampered = copy.deepcopy(fast_trace)
        tampered[2]["reputations"][5] += 1e-3
        diff = diff_traces(fast_trace, tampered, mode="strict")
        assert not diff.ok
        first = diff.first
        assert first.cycle == tampered[2]["cycle"]
        assert "reputations[5]" in first.field
        report = diff.render()
        assert "first divergence" in report
        assert "DIVERGED" in report

    def test_tolerance_mode_forgives_tiny_drift(self, fast_trace):
        import copy

        drifted = copy.deepcopy(fast_trace)
        drifted[1]["reputations"][0] *= 1.0 + 1e-13
        # Digests are bound to the exact bytes; tolerance mode must not
        # report them when the stats they summarise still agree.
        drifted[1]["omega_c"]["sha256"] = "0" * 64
        assert not diff_traces(fast_trace, drifted, mode="strict").ok
        assert diff_traces(fast_trace, drifted, mode="tolerance").ok

    def test_length_mismatch_reported(self, fast_trace):
        diff = diff_traces(fast_trace, fast_trace[:-1], mode="strict")
        assert not diff.ok
        assert diff.first.field == "<trace length>"

    def test_divergence_cap(self, fast_trace):
        import copy

        tampered = copy.deepcopy(fast_trace)
        for line in tampered:
            if line["type"] == "cycle":
                line["reputations"] = [x + 1e-3 for x in line["reputations"]]
        diff = diff_traces(fast_trace, tampered, mode="strict", max_divergences=7)
        assert len(diff.divergences) == 7
        assert "more" in diff.render(max_shown=3)


class TestMutationDetection:
    """The acceptance gate: a one-line detector mutation (swapped band
    percentiles, i.e. a flipped Tcl/Tch comparison) must trip the golden
    check against the checked-in traces."""

    @pytest.fixture
    def flipped_bands(self, monkeypatch):
        from repro.core.detector import CollusionDetector

        original = CollusionDetector._band_thresholds

        def flipped(values, low, high):
            t_low, t_high = original(values, low, high)
            return t_high, t_low

        monkeypatch.setattr(
            CollusionDetector, "_band_thresholds", staticmethod(flipped)
        )

    def test_mutation_diverges_from_checked_in_golden(self, flipped_bands):
        diff = check_golden(GOLDEN_DIR / "eigentrust_pcm.jsonl", mode="tolerance")
        assert not diff.ok
        fields = " ".join(d.field for d in diff.divergences)
        assert "detector" in fields or "reputations" in fields

    def test_mutation_diverges_in_process(self, monkeypatch):
        from repro.core.detector import CollusionDetector

        clean = record_trace(FAST_SCENARIO)
        original = CollusionDetector._band_thresholds

        def flipped(values, low, high):
            t_low, t_high = original(values, low, high)
            return t_high, t_low

        monkeypatch.setattr(
            CollusionDetector, "_band_thresholds", staticmethod(flipped)
        )
        mutated = record_trace(FAST_SCENARIO)
        diff = diff_traces(clean, mutated, mode="strict")
        assert not diff.ok
        assert "first divergence" in diff.render()
