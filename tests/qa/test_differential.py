"""Differential runner: backend × engine sweep and its invariant checks."""

import numpy as np
import pytest

from repro.qa import (
    BACKENDS,
    BackendComparison,
    CellResult,
    CoefficientDifferentialReport,
    DifferentialReport,
    run_coefficient_differential,
    run_differential,
)


class TestSweep:
    @pytest.fixture(scope="class")
    def report(self):
        return run_differential(seed=4, cycles=2)

    def test_full_grid_holds(self, report):
        assert report.ok, "\n".join(report.violations)

    def test_covers_every_backend_and_engine(self, report):
        cells = {(c.backend, c.engine) for c in report.cells}
        assert cells == {(b, e) for b in BACKENDS for e in ("batched", "scalar")}

    def test_engine_twins_bit_identical(self, report):
        by_backend = {}
        for cell in report.cells:
            by_backend.setdefault(cell.backend, {})[cell.engine] = cell
        for backend, cells in by_backend.items():
            assert np.array_equal(
                cells["batched"].reputations, cells["scalar"].reputations
            ), backend

    def test_summary_mentions_every_backend(self, report):
        text = report.summary()
        for backend in BACKENDS:
            assert backend in text
        assert "ALL INVARIANTS HOLD" in text

    def test_socialtrust_only_wraps_wrappable_backends(self, report):
        names = {c.backend: c.system_name for c in report.cells}
        assert "SocialTrust" in names["eigentrust"]
        assert "SocialTrust" not in names["trustguard"]
        assert "SocialTrust" not in names["gossip"]


class TestSubsetsAndErrors:
    def test_backend_subset(self):
        report = run_differential(
            seed=1, cycles=2, backends=("eigentrust",), engines=("batched",)
        )
        assert len(report.cells) == 1
        assert report.ok

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_differential(backends=("eigentrust", "bitcoin"))

    def test_overrides_forwarded(self):
        report = run_differential(
            seed=2,
            cycles=2,
            backends=("ebay",),
            engines=("batched", "scalar"),
            n_nodes=16,
            n_colluders=3,
        )
        assert report.ok
        assert report.cells[0].reputations.shape == (16,)


class TestCoefficientSweep:
    """Dense vs sparse Ωc/Ωs backends across the full grid (tolerance mode)."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_coefficient_differential(seed=4, cycles=2)

    def test_all_backends_agree(self, report):
        assert report.ok, "\n".join(report.violations)

    def test_covers_every_backend_and_engine(self, report):
        cells = {(c.backend, c.engine) for c in report.comparisons}
        assert cells == {(b, e) for b in BACKENDS for e in ("batched", "scalar")}

    def test_bare_backends_bit_identical(self, report):
        for cmp in report.comparisons:
            if not cmp.wrapped:
                assert cmp.max_abs_diff == 0.0, cmp.backend

    def test_summary_reports_agreement(self, report):
        text = report.summary()
        assert "BACKENDS AGREE" in text
        for backend in BACKENDS:
            assert backend in text

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_coefficient_differential(backends=("eigentrust", "bitcoin"))

    def test_violation_plumbing(self):
        report = CoefficientDifferentialReport(
            seed=0, cycles=2, rtol=1e-9, atol=1e-12
        )
        report.comparisons.append(
            BackendComparison(
                backend="eigentrust",
                engine="batched",
                system_name="x",
                wrapped=True,
                max_abs_diff=0.5,
                violations=("reputations diverge",),
            )
        )
        assert not report.ok
        assert "eigentrust/batched" in report.violations[0]
        assert "VIOLATIONS FOUND" in report.summary()


class TestViolationPlumbing:
    def _cell(self, violations=()):
        return CellResult(
            backend="eigentrust",
            engine="batched",
            system_name="x",
            reputations=np.zeros(4),
            history=np.zeros((2, 4)),
            total_requests=10,
            total_served=9,
            unserved=1,
            violations=tuple(violations),
        )

    def test_cell_violations_bubble_up(self):
        report = DifferentialReport(seed=0, cycles=2)
        report.cells.append(self._cell(["reputations outside [0, 1]"]))
        assert not report.ok
        assert "eigentrust/batched" in report.violations[0]
        assert "VIOLATIONS FOUND" in report.summary()

    def test_cross_violations_bubble_up(self):
        report = DifferentialReport(seed=0, cycles=2)
        report.cells.append(self._cell())
        report.cross_violations.append("eigentrust: engines differ")
        assert not report.ok
        assert "cross-engine violations" in report.summary()
