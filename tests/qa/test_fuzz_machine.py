"""Stateful fuzz harnesses: tier-1 smoke runs, violation sensitivity,
and the hypothesis-driven state machines (marked ``fuzz``)."""

import pytest

from repro.qa import run_fuzz
from repro.qa.fuzz import (
    EngineFuzzHarness,
    InvariantViolation,
    ManagerFuzzHarness,
    build_engine_machine,
    build_manager_machine,
)


class TestSmoke:
    def test_short_run_holds_invariants(self):
        reports = run_fuzz(steps=40, seed=3, harness="both")
        assert [r.harness for r in reports] == ["engine", "manager"]
        for report in reports:
            assert report.ok, report.summary()
            assert report.steps == 40
            assert sum(report.rule_counts.values()) == 40
            assert report.cache_audits, "teardown must audit the caches"

    def test_single_harness_selection(self):
        (report,) = run_fuzz(steps=10, seed=0, harness="engine")
        assert report.harness == "engine"

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            run_fuzz(steps=0)
        with pytest.raises(ValueError):
            run_fuzz(steps=10, harness="quantum")

    def test_summary_reports_held_invariants(self):
        (report,) = run_fuzz(steps=10, seed=1, harness="manager")
        assert "all invariants held" in report.summary()


class TestViolationSensitivity:
    """The harness must actually notice when the twins drift apart."""

    def test_one_sided_ledger_write_trips_engine_invariant(self):
        harness = EngineFuzzHarness(seed=7)
        harness.run_cycle()
        # Feed one twin only — the engines now see different worlds.
        harness.simulations["batched"].ledger.record_batch(6, 7, 1.0, 9)
        with pytest.raises(InvariantViolation, match="diverged"):
            harness.run_cycle()

    def test_one_sided_interval_trips_manager_invariant(self):
        harness = ManagerFuzzHarness(seed=7)
        harness.add_burst(3, 4, positive=True, count=5)
        harness.flush_interval()
        # Slip an interval into the centralised system behind the
        # harness's back; the next fault-free flush must catch it.  The
        # rater must be pretrusted so the extra ratings actually move
        # the EigenTrust vector.
        harness.ledger.record_batch(0, 6, 1.0, 8)
        harness.central.update(harness.ledger.drain())
        harness.add_burst(8, 9, positive=False, count=3)
        with pytest.raises(InvariantViolation, match="diverged"):
            harness.flush_interval()

    def test_divergence_waived_after_failover(self):
        harness = ManagerFuzzHarness(seed=7)
        harness.crash_manager(0)
        harness.add_burst(3, 4, positive=True, count=5)
        harness.flush_interval()
        assert harness.diverged
        # Fault-free equality is no longer owed: flushes keep working.
        harness.recover_manager(0)
        harness.add_burst(5, 6, positive=True, count=2)
        harness.flush_interval()


@pytest.mark.fuzz
class TestHypothesisMachines:
    """The real RuleBasedStateMachine runs — excluded from tier-1."""

    def _run(self, machine_cls, steps):
        from hypothesis import settings
        from hypothesis.stateful import run_state_machine_as_test

        run_state_machine_as_test(
            machine_cls,
            settings=settings(
                max_examples=5, stateful_step_count=steps, deadline=None
            ),
        )

    def test_engine_machine(self):
        self._run(build_engine_machine(seed=0), steps=15)

    def test_manager_machine(self):
        self._run(build_manager_machine(seed=0), steps=20)
