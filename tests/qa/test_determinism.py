"""Seed determinism: same seed ⇒ bit-identical results, across engine
modes and every collusion model."""

import numpy as np
import pytest

from repro.api import run_scenario

SMALL = dict(
    n_nodes=20,
    n_pretrusted=2,
    n_colluders=5,
    n_interests=6,
    interests_per_node=(1, 3),
    capacity=10,
    query_cycles=3,
    simulation_cycles=3,
)

COLLUSIONS = ["none", "pcm", "mcm", "mmm"]


def _run(collusion: str, engine: str, seed: int = 17):
    return run_scenario(
        seed=seed,
        system="EigenTrust+SocialTrust",
        collusion=collusion,
        engine=engine,
        **SMALL,
    )


@pytest.mark.parametrize("collusion", COLLUSIONS)
@pytest.mark.parametrize("engine", ["batched", "scalar"])
def test_same_seed_is_bit_identical(collusion, engine):
    first = _run(collusion, engine)
    second = _run(collusion, engine)
    assert np.array_equal(first.reputations, second.reputations)
    assert np.array_equal(first.history, second.history)
    assert first.metrics.total_requests == second.metrics.total_requests
    assert first.metrics.total_served == second.metrics.total_served
    assert first.metrics.unserved == second.metrics.unserved


@pytest.mark.parametrize("collusion", COLLUSIONS)
def test_engine_modes_are_bit_identical(collusion):
    batched = _run(collusion, "batched")
    scalar = _run(collusion, "scalar")
    assert np.array_equal(batched.reputations, scalar.reputations)
    assert np.array_equal(batched.history, scalar.history)
    assert batched.metrics.total_requests == scalar.metrics.total_requests


@pytest.mark.parametrize("collusion", ["none", "pcm"])
def test_different_seeds_differ(collusion):
    a = _run(collusion, "batched", seed=17)
    b = _run(collusion, "batched", seed=18)
    assert not np.array_equal(a.reputations, b.reputations)


def test_history_shape_matches_cycles():
    result = _run("pcm", "batched")
    assert result.history.shape == (SMALL["simulation_cycles"], SMALL["n_nodes"])
