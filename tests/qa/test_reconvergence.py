"""Reconvergence harness: metric helpers and the full backend sweep."""

import numpy as np
import pytest

from repro.chaos import ByzantineSpec, ChaosSpec, PartitionSpec
from repro.qa.differential import BACKENDS
from repro.qa.reconvergence import (
    _cycles_to_reconverge,
    _group_error_series,
    _last_heal_cycle,
    run_reconvergence,
)


class TestCyclesToReconverge:
    def test_never_above_tolerance(self):
        errors = np.array([0.001, 0.002, 0.001])
        assert _cycles_to_reconverge(errors, heal_cycle=1, tolerance=0.01) == 0

    def test_recovers_after_heal(self):
        errors = np.array([0.0, 0.5, 0.5, 0.03, 0.001, 0.001])
        assert _cycles_to_reconverge(errors, heal_cycle=3, tolerance=0.01) == 1

    def test_counts_last_excursion_not_first(self):
        # Dips below tolerance then bounces back above: not reconverged
        # until the *last* above-tolerance cycle has passed.
        errors = np.array([0.5, 0.001, 0.5, 0.001, 0.001])
        assert _cycles_to_reconverge(errors, heal_cycle=0, tolerance=0.01) == 3

    def test_still_above_at_end_is_none(self):
        errors = np.array([0.0, 0.5, 0.5])
        assert _cycles_to_reconverge(errors, heal_cycle=1, tolerance=0.01) is None


class TestGroupErrorSeries:
    def test_max_over_groups(self):
        ref = np.zeros((2, 6))
        chaos = np.zeros((2, 6))
        chaos[1, :3] = 0.3  # group A mean moves by 0.3 in cycle 1
        errors = _group_error_series(ref, chaos, ([0, 1, 2], [3, 4, 5]))
        assert errors == pytest.approx([0.0, 0.3])

    def test_small_groups_excluded(self):
        ref = np.zeros((1, 6))
        chaos = np.ones((1, 6))
        chaos[0, 2:] = 0.0  # only the 2-node group diverges
        errors = _group_error_series(ref, chaos, ([0, 1], [2, 3, 4, 5]))
        assert errors == pytest.approx([0.0])

    def test_no_eligible_group_rejected(self):
        ref = np.zeros((1, 4))
        with pytest.raises(ValueError, match="group"):
            _group_error_series(ref, ref, ([0, 1], [2, 3]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes"):
            _group_error_series(np.zeros((2, 4)), np.zeros((3, 4)), ([0, 1, 2],))


class TestLastHealCycle:
    def test_open_ended_byzantine_never_heals(self):
        spec = ChaosSpec(byzantines=(ByzantineSpec(0, 2),))
        assert _last_heal_cycle(spec, cycles=10) == 10

    def test_max_over_windows(self):
        spec = ChaosSpec(
            partitions=(PartitionSpec(1, 6),),
            byzantines=(ByzantineSpec(0, 2, 4),),
        )
        assert _last_heal_cycle(spec, cycles=10) == 6


class TestRunValidation:
    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            run_reconvergence(chaos=ChaosSpec())

    def test_heal_past_end_rejected(self):
        spec = ChaosSpec(partitions=(PartitionSpec(1, 20),))
        with pytest.raises(ValueError, match="heal"):
            run_reconvergence(cycles=6, chaos=spec)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_reconvergence(backends=("eigentrust", "nope"))

    def test_zero_managers_rejected(self):
        with pytest.raises(ValueError, match="n_managers"):
            run_reconvergence(n_managers=0)


class TestFullSweep:
    def test_every_backend_reconverges(self):
        """The acceptance criterion: default chaos (one partition + a
        Byzantine window per manager), heal, and every backend's group
        aggregates return within tolerance inside the budget."""
        report = run_reconvergence(seed=0, cycles=12)
        assert [r.backend for r in report.results] == list(BACKENDS)
        for result in report.results:
            assert result.peak_error > 0.0, result.backend
            assert result.ok, report.summary()
        assert report.ok

    def test_report_is_json_round_trippable(self):
        import json

        report = run_reconvergence(seed=0, cycles=12)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert len(payload["results"]) == len(BACKENDS)
        assert payload["chaos"]["partitions"]
