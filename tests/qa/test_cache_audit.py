"""Cache-vs-recompute audit: honest caches pass, corrupted caches fail."""

import numpy as np
import pytest

from repro.api import build_scenario
from repro.qa import assert_caches_consistent, audit_caches


@pytest.fixture(scope="module")
def run_system():
    scenario = build_scenario(
        seed=11,
        system="EigenTrust+SocialTrust",
        collusion="pcm",
        n_nodes=24,
        n_pretrusted=2,
        n_colluders=5,
        n_interests=6,
        interests_per_node=(1, 3),
        query_cycles=4,
        simulation_cycles=4,
    )
    scenario.run(4)
    return scenario.world.system


class TestHonestCaches:
    def test_audit_passes_after_run(self, run_system):
        report = audit_caches(run_system)
        assert report.ok, report.summary()
        assert report.closeness_max_abs_diff <= 1e-9
        assert report.similarity_max_abs_diff <= 1e-9

    def test_assert_helper_returns_report(self, run_system):
        report = assert_caches_consistent(run_system)
        assert report.ok

    def test_summary_says_consistent(self, run_system):
        assert "CONSISTENT" in audit_caches(run_system).summary()


class TestCorruptedCaches:
    def _corrupt(self, system, delta: float):
        """Poison the live Ωc cache the way a bad incremental patch would."""
        computer = system.closeness_computer
        hacked = computer.closeness_matrix().copy()
        hacked[0, 1] += delta
        hacked.flags.writeable = False
        computer._cached_matrix = hacked

    def test_audit_detects_corruption(self, run_system):
        self._corrupt(run_system, 0.25)
        try:
            report = audit_caches(run_system)
            assert not report.ok
            assert report.n_closeness_mismatches == 1
            assert report.closeness_max_abs_diff == pytest.approx(0.25)
            assert "DIVERGED" in report.summary()
        finally:
            run_system.closeness_computer.invalidate_cache()

    def test_assert_helper_raises(self, run_system):
        self._corrupt(run_system, 0.25)
        try:
            with pytest.raises(AssertionError, match="DIVERGED"):
                assert_caches_consistent(run_system)
        finally:
            run_system.closeness_computer.invalidate_cache()

    def test_drift_below_tolerance_is_accepted(self, run_system):
        self._corrupt(run_system, 1e-13)
        try:
            assert audit_caches(run_system).ok
        finally:
            run_system.closeness_computer.invalidate_cache()


class TestChurnHeavyDrift:
    """Satellite regression: the incremental Ωc ``T2`` low-rank corrections
    plus the periodic exact rebuild (``cache_rebuild_interval``) must keep
    drift inside the audit tolerance over churn-heavy runs — the exact
    failure mode the T2 drift bug produced before the rebuild counter."""

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_drift_bounded_over_200_churn_steps(self, backend):
        scenario = build_scenario(
            seed=29,
            system="EigenTrust+SocialTrust",
            collusion="pcm",
            n_nodes=16,
            n_pretrusted=2,
            n_colluders=3,
            n_interests=5,
            interests_per_node=(1, 3),
            query_cycles=2,
            simulation_cycles=2,
            socialtrust={
                "coefficient_backend": backend,
                "cache_rebuild_interval": 8,
            },
        )
        scenario.run(2)
        system = scenario.world.system
        ledger = system.closeness_computer.interactions
        rng = np.random.default_rng(29)
        for step in range(200):
            i, j = (int(v) for v in rng.integers(0, 16, 2))
            if i != j:
                ledger.record(i, j, float(rng.integers(1, 4)))
            if step % 3 == 0:
                ledger.decay_nodes(np.unique(rng.integers(0, 16, 3)), 0.5)
            # Re-evaluate every step so the cache stays on the dirty-row
            # incremental path instead of collapsing to one full rebuild.
            system.closeness_computer.closeness_matrix()
        report = assert_caches_consistent(system)
        assert report.closeness_max_abs_diff <= 1e-9


def test_audit_works_on_distributed_socialtrust():
    from repro.qa.fuzz import ManagerFuzzHarness

    harness = ManagerFuzzHarness(seed=5)
    harness.add_burst(3, 4, positive=True, count=5)
    harness.flush_interval()
    for report in (audit_caches(harness.central), audit_caches(harness.distributed)):
        assert report.ok, report.summary()


def test_fresh_system_has_consistent_caches():
    scenario = build_scenario(
        seed=0,
        system="EigenTrust+SocialTrust",
        n_nodes=12,
        n_pretrusted=1,
        n_colluders=2,
        n_interests=4,
        interests_per_node=(1, 3),
    )
    report = audit_caches(scenario.world.system)
    assert report.ok
    assert report.closeness_max_abs_diff == 0.0
