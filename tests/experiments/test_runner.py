"""Tests for multi-run aggregation."""

import numpy as np
import pytest

from repro.experiments.runner import (
    ExperimentResult,
    RunStats,
    average_runs,
    run_cell,
)
from repro.experiments.setup import CollusionKind, WorldConfig

SMALL = dict(
    n_nodes=24,
    n_pretrusted=2,
    n_colluders=4,
    n_interests=6,
    interests_per_node=(1, 3),
    simulation_cycles=2,
    query_cycles=4,
    collusion=CollusionKind.PCM,
)


class TestRunStats:
    def test_single_run_zero_ci(self):
        stats = RunStats.from_samples([np.array([1.0, 2.0])])
        assert np.array_equal(stats.mean, [1.0, 2.0])
        assert np.array_equal(stats.ci95, [0.0, 0.0])
        assert stats.n_runs == 1

    def test_mean_and_ci(self):
        stats = RunStats.from_samples([np.array([1.0]), np.array([3.0])])
        assert stats.mean[0] == pytest.approx(2.0)
        sem = np.std([1.0, 3.0], ddof=1) / np.sqrt(2)
        assert stats.ci95[0] == pytest.approx(1.96 * sem)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RunStats.from_samples([])

    def test_scalars_promoted(self):
        stats = RunStats.from_samples([np.array(5.0), np.array(7.0)])
        assert stats.mean.shape == (1,)


class TestExperimentResult:
    def test_add_series(self):
        result = ExperimentResult("x", "title")
        result.add_series("a", [np.array([1.0]), np.array([2.0])])
        assert result.series["a"].mean[0] == pytest.approx(1.5)

    def test_describe_mentions_everything(self):
        result = ExperimentResult("figX", "My title")
        result.meta["note"] = "hello"
        result.add_series("short", [np.arange(3.0)])
        result.add_series("long", [np.arange(20.0)])
        text = result.describe()
        assert "figX" in text and "My title" in text
        assert "note" in text
        assert "short" in text and "long" in text
        assert "n=20" in text  # long series summarised


class TestRunCell:
    def test_returns_finished_world(self):
        world = run_cell(WorldConfig(**SMALL))
        assert world.simulation.cycles_run == 2


class TestAverageRuns:
    def test_array_extractor(self):
        stats = average_runs(
            WorldConfig(**SMALL),
            lambda w: w.simulation.metrics.final_reputations(),
            n_runs=2,
        )
        assert stats.mean.shape == (24,)
        assert stats.n_runs == 2

    def test_scalar_extractor(self):
        stats = average_runs(
            WorldConfig(**SMALL),
            lambda w: w.simulation.metrics.fraction_served_by(
                w.config.colluder_ids
            ),
            n_runs=2,
        )
        assert stats.mean.shape == (1,)
        assert 0.0 <= stats.mean[0] <= 1.0

    def test_mapping_extractor(self):
        stats = average_runs(
            WorldConfig(**SMALL),
            lambda w: {"a": 1.0, "b": 2.0},
            n_runs=2,
        )
        assert np.array_equal(stats.mean, [1.0, 2.0])

    def test_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            average_runs(WorldConfig(**SMALL), lambda w: 0.0, n_runs=0)
