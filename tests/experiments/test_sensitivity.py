"""Tests for the parameter-sensitivity sweeps."""

import pytest

from repro.experiments.sensitivity import (
    SensitivityPoint,
    sweep_socialtrust_parameter,
)

FAST = dict(simulation_cycles=2)


class TestSweep:
    def test_theta_sweep_shape(self):
        points = sweep_socialtrust_parameter("theta", [2.0, 4.0], **FAST)
        assert len(points) == 2
        assert all(isinstance(p, SensitivityPoint) for p in points)
        assert points[0].value == 2.0
        assert points[1].value == 4.0

    def test_metrics_are_bounded(self):
        (point,) = sweep_socialtrust_parameter("recidivism_decay", [0.5], **FAST)
        assert 0.0 <= point.colluder_mass <= 1.0
        assert 0.0 <= point.request_share <= 1.0
        assert 0.0 <= point.false_positive_share <= 1.0

    def test_exploration_parameter_routes_to_world(self):
        points = sweep_socialtrust_parameter(
            "selection_exploration", [0.0, 0.5], **FAST
        )
        assert len(points) == 2

    def test_min_band_size_parameter(self):
        (point,) = sweep_socialtrust_parameter("min_band_size", [5], **FAST)
        assert point.value == 5.0

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="parameter"):
            sweep_socialtrust_parameter("bogus", [1.0], **FAST)

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            sweep_socialtrust_parameter("theta", [], **FAST)

    def test_deterministic(self):
        a = sweep_socialtrust_parameter("theta", [2.0], seed=3, **FAST)
        b = sweep_socialtrust_parameter("theta", [2.0], seed=3, **FAST)
        assert a == b
