"""Smoke tests for the Table-1 reproduction at reduced scale."""

import pytest

from repro.experiments.setup import CollusionKind
from repro.experiments.table1 import PAPER_TABLE1, TABLE1_ROWS, table1

SMALL_WORLD = dict(
    n_nodes=30,
    n_pretrusted=3,
    n_colluders=6,
    n_interests=8,
    interests_per_node=(1, 4),
    query_cycles=5,
)


@pytest.fixture(scope="module")
def result():
    return table1(
        n_runs=1,
        simulation_cycles=3,
        models=(CollusionKind.PCM,),
        b_values=(0.6,),
        overrides=SMALL_WORLD,
    )


class TestTable1:
    def test_all_rows_present(self, result):
        labels = {key.split("/")[-1] for key in result.series}
        assert labels == {label for label, _, _ in TABLE1_ROWS}

    def test_fractions_are_probabilities(self, result):
        for stats in result.series.values():
            assert 0.0 <= stats.mean[0] <= 1.0

    def test_paper_values_attached(self, result):
        paper = result.meta["paper"]
        assert paper["pcm/B=0.6/EigenTrust"] == 0.24

    def test_paper_reference_complete(self):
        # 3 models x 2 B x 6 rows.
        assert len(PAPER_TABLE1) == 36
        assert all(0.0 < v <= 1.0 for v in PAPER_TABLE1.values())

    def test_compromised_rows_clamped_to_available_pretrusted(self, result):
        # With only 3 pre-trusted peers the (Pre) rows still run.
        assert "pcm/B=0.6/EigenTrust (Pre)" in result.series
