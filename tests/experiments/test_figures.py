"""Smoke + shape tests for the figure reproductions at reduced scale."""

import numpy as np
import pytest

from repro.experiments import figures
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.trace.generator import MarketplaceConfig

#: Scaled-down world shared by all simulation figures in this module.
SMALL_WORLD = dict(
    n_nodes=30,
    n_pretrusted=3,
    n_colluders=6,
    n_interests=8,
    interests_per_node=(1, 4),
    query_cycles=5,
)
SMALL_TRACE = MarketplaceConfig(n_users=250, n_months=5)
FAST = dict(n_runs=1, simulation_cycles=3, overrides=SMALL_WORLD)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = (
            {f"fig{i}" for i in (1, 2, 3, 4)}
            | {f"fig{i}" for i in range(7, 21)}
            | {"table1", "fault_tolerance"}
        )
        assert set(EXPERIMENTS) == expected

    def test_lookup(self):
        assert get_experiment("fig8") is figures.fig8

    def test_unknown_raises_with_known_list(self):
        with pytest.raises(KeyError, match="fig8"):
            get_experiment("nope")

    def test_list_sorted(self):
        names = list_experiments()
        assert names == sorted(names)


class TestTraceFigures:
    def test_fig1(self):
        result = figures.fig1(seed=1, config=SMALL_TRACE)
        assert "business_size_correlation" in result.series
        c = result.series["business_size_correlation"].mean[0]
        assert 0.0 <= c <= 1.0

    def test_fig2(self):
        result = figures.fig2(seed=1, config=SMALL_TRACE)
        assert 0.0 <= result.series["personal_size_correlation"].mean[0] <= 1.0

    def test_fig3_decays(self):
        result = figures.fig3(seed=1, config=SMALL_TRACE)
        means = result.series["mean_rating_by_hop"].mean
        assert means[0] > means[-1]

    def test_fig4_cdfs(self):
        result = figures.fig4(seed=1, config=SMALL_TRACE)
        rank = result.series["category_rank_cdf"].mean
        assert np.all(np.diff(rank) >= -1e-12)
        sim = result.series["interest_similarity_cdf"].mean
        assert sim[-1] == pytest.approx(1.0)


class TestSimulationFigures:
    def test_fig7_two_systems(self):
        result = figures.fig7(**FAST)
        assert set(result.series) == {"EigenTrust", "eBay"}
        assert "percent_services_by_malicious" in result.meta

    def test_fig8_four_systems_full_distributions(self):
        result = figures.fig8(**FAST)
        assert len(result.series) == 4
        for stats in result.series.values():
            assert stats.mean.shape == (SMALL_WORLD["n_nodes"],)

    def test_fig10_compromised(self):
        result = figures.fig10(
            n_runs=1,
            simulation_cycles=3,
            overrides={**SMALL_WORLD, "n_compromised_pretrusted": 2},
        )
        assert set(result.series) == {"EigenTrust", "EigenTrust+SocialTrust"}

    def test_fig15_both_models(self):
        result = figures.fig15(
            n_runs=1,
            simulation_cycles=3,
            overrides={**SMALL_WORLD, "n_compromised_pretrusted": 2},
        )
        assert any(k.startswith("MCM/") for k in result.series)
        assert any(k.startswith("MMM/") for k in result.series)

    def test_fig16_falsified_socialtrust_only(self):
        result = figures.fig16(**FAST)
        assert set(result.series) == {
            "EigenTrust+SocialTrust",
            "eBay+SocialTrust",
        }

    def test_fig19_convergence_series(self):
        result = figures.fig19(**FAST)
        assert "B=0.2/EigenTrust+SocialTrust" in result.series
        assert "B=0.6/EigenTrust" in result.series
        for stats in result.series.values():
            assert 1 <= stats.mean[0] <= 4  # cycles or never-converged (4)

    def test_fig20_distance_sweep(self):
        result = figures.fig20(
            n_runs=1,
            simulation_cycles=3,
            distances=(1, 2),
            overrides=SMALL_WORLD,
        )
        assert result.series["colluders/PCM"].mean.shape == (2,)
        assert result.meta["distances"] == [1, 2]

    def test_request_fractions_are_probabilities(self):
        result = figures.fig9(**FAST)
        for value in result.meta["request_fraction_to_colluders"].values():
            assert 0.0 <= value <= 1.0
