"""Tests for the experimental world builder."""

import numpy as np
import pytest

from repro.collusion import (
    CompositeCollusion,
    MultiNodeCollusion,
    MutualMultiNodeCollusion,
    NoCollusion,
    PairwiseCollusion,
)
from repro.core import SocialTrust
from repro.experiments.setup import (
    CollusionKind,
    SystemKind,
    WorldConfig,
    build_world,
)
from repro.reputation import EBayModel, EigenTrust, PowerTrust

SMALL = dict(
    n_nodes=30,
    n_pretrusted=3,
    n_colluders=6,
    n_interests=8,
    interests_per_node=(1, 4),
    simulation_cycles=2,
    query_cycles=5,
)


class TestWorldConfig:
    def test_id_partitions(self):
        cfg = WorldConfig(**SMALL)
        assert cfg.pretrusted_ids == (0, 1, 2)
        assert cfg.colluder_ids == tuple(range(3, 9))
        assert cfg.normal_ids == tuple(range(9, 30))

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            WorldConfig(n_nodes=10, n_pretrusted=6, n_colluders=6)

    def test_rejects_excess_compromise(self):
        with pytest.raises(ValueError):
            WorldConfig(n_compromised_pretrusted=10)

    def test_rejects_compromise_without_collusion(self):
        with pytest.raises(ValueError):
            WorldConfig(collusion=CollusionKind.NONE, n_compromised_pretrusted=2)

    def test_with_system(self):
        cfg = WorldConfig(**SMALL)
        out = cfg.with_system(SystemKind.EBAY)
        assert out.system is SystemKind.EBAY
        assert out.n_nodes == cfg.n_nodes

    def test_system_kind_helpers(self):
        assert SystemKind.EIGENTRUST_SOCIALTRUST.uses_socialtrust
        assert not SystemKind.EBAY.uses_socialtrust
        assert SystemKind.EBAY_SOCIALTRUST.base is SystemKind.EBAY


class TestBuildWorld:
    @pytest.mark.parametrize(
        "collusion, expected",
        [
            (CollusionKind.NONE, NoCollusion),
            (CollusionKind.PCM, PairwiseCollusion),
            (CollusionKind.MCM, MultiNodeCollusion),
            (CollusionKind.MMM, MutualMultiNodeCollusion),
        ],
    )
    def test_schedule_kind(self, collusion, expected):
        cfg = WorldConfig(collusion=collusion, mcm_n_boosted=2, **SMALL)
        world = build_world(cfg)
        assert isinstance(world.collusion, expected)

    @pytest.mark.parametrize(
        "system, base_type",
        [
            (SystemKind.EIGENTRUST, EigenTrust),
            (SystemKind.EBAY, EBayModel),
            (SystemKind.POWERTRUST, PowerTrust),
        ],
    )
    def test_base_system_type(self, system, base_type):
        cfg = WorldConfig(system=system, **SMALL)
        assert isinstance(build_world(cfg).system, base_type)

    def test_powertrust_socialtrust_stack(self):
        cfg = WorldConfig(system=SystemKind.POWERTRUST_SOCIALTRUST, **SMALL)
        world = build_world(cfg)
        assert isinstance(world.system, SocialTrust)
        assert isinstance(world.system.inner, PowerTrust)
        world.simulation.run()
        assert world.system.reputations.sum() == pytest.approx(1.0)

    def test_socialtrust_wrapping(self):
        cfg = WorldConfig(system=SystemKind.EIGENTRUST_SOCIALTRUST, **SMALL)
        world = build_world(cfg)
        assert isinstance(world.system, SocialTrust)
        assert isinstance(world.system.inner, EigenTrust)

    def test_colluders_at_unit_distance(self):
        cfg = WorldConfig(**SMALL)
        world = build_world(cfg)
        cols = cfg.colluder_ids
        assert world.social_network.distance(cols[0], cols[1]) == 1

    def test_colluder_distance_override(self):
        cfg = WorldConfig(colluder_distance=3, **SMALL)
        world = build_world(cfg)
        cols = cfg.colluder_ids
        assert world.social_network.distance(cols[0], cols[-1]) == 3

    def test_compromised_pretrusted_selected(self):
        cfg = WorldConfig(n_compromised_pretrusted=2, **SMALL)
        world = build_world(cfg)
        assert len(world.compromised_pretrusted) == 2
        assert set(world.compromised_pretrusted) <= set(cfg.pretrusted_ids)
        assert isinstance(world.collusion, CompositeCollusion)

    def test_compromised_pair_at_unit_distance(self):
        cfg = WorldConfig(n_compromised_pretrusted=2, **SMALL)
        world = build_world(cfg)
        extra = world.collusion._schedules[1]  # noqa: SLF001
        for pretrusted, colluder in extra.partners:
            assert world.social_network.distance(pretrusted, colluder) == 1

    def test_adversary_ids(self):
        cfg = WorldConfig(n_compromised_pretrusted=1, **SMALL)
        world = build_world(cfg)
        assert set(world.adversary_ids) == set(cfg.colluder_ids) | set(
            world.compromised_pretrusted
        )

    def test_colluding_pairs_low_interest_overlap(self):
        cfg = WorldConfig(**SMALL)
        world = build_world(cfg)
        a, b = world.collusion.pairs[0]
        assert not (world.profiles.declared(a) & world.profiles.declared(b))
        # The population specs were rebuilt consistently.
        assert world.population[a].interests == world.profiles.declared(a)

    def test_low_overlap_can_be_disabled(self):
        cfg = WorldConfig(colluder_low_interest_overlap=False, **SMALL)
        world = build_world(cfg)  # just must not raise; overlap is by chance
        assert world.population.n_nodes == cfg.n_nodes

    def test_falsified_info_applied(self):
        cfg = WorldConfig(falsified_social_info=True, **SMALL)
        world = build_world(cfg)
        schedule = world.collusion
        a, b = schedule.pairs[0]
        assert len(world.social_network.relationships(a, b)) == 1
        assert world.profiles.declared(a) == world.profiles.declared(b)

    def test_reproducible(self):
        cfg = WorldConfig(**SMALL)
        a = build_world(cfg, seed=4, run_index=1)
        b = build_world(cfg, seed=4, run_index=1)
        ra = a.simulation.run().final_reputations()
        rb = b.simulation.run().final_reputations()
        assert np.allclose(ra, rb)

    def test_run_indices_differ(self):
        cfg = WorldConfig(**SMALL)
        a = build_world(cfg, seed=4, run_index=0)
        b = build_world(cfg, seed=4, run_index=1)
        assert not np.allclose(
            a.simulation.run().final_reputations(),
            b.simulation.run().final_reputations(),
        )

    def test_shared_ledgers_wired(self):
        cfg = WorldConfig(system=SystemKind.EIGENTRUST_SOCIALTRUST, **SMALL)
        world = build_world(cfg)
        world.simulation.run()
        # The SocialTrust stack reads the same interaction ledger the
        # simulator writes.
        assert world.interactions.counts_matrix().sum() > 0
        assert world.system.last_detection is not None
